"""Crash-isolated suite runs: the resilient Table I flow.

:func:`optimize_resilient` is the fault-tolerant twin of
:func:`repro.pipeline.optimize_circuit`: every expensive stage runs
through the executor's retry/degradation ladder
(:mod:`repro.runtime.executor`), so one infeasible circuit, runaway
solve or simulation hiccup yields a usable, clearly-labeled row instead
of aborting the experiment:

* observability simulation -- bounded retry with reseeding;
* Sec. V initialization -- exact (setup+hold) R_min, degrading to the
  zero-retiming / degenerate-R_min configuration;
* each solver -- ``minobswin -> minobs -> identity`` (a deadline expiry
  first recovers the solver's best feasible retiming as a
  ``:partial`` result before degrading further);
* rebuild + SER -- guarded by :mod:`repro.runtime.guards`; quarantined
  (non-equivalent) results degrade like any other failure.

:func:`run_suite` executes a whole benchmark suite circuit-by-circuit
with per-circuit crash isolation, checkpoints every completed circuit to
a :class:`~repro.runtime.manifest.RunManifest`, and resumes from a
partial manifest on restart.  All result-determining quantities are
deterministic given the config (rows resumed from a manifest are
byte-identical to freshly computed ones); the wall-clock ``t_ref`` /
``t_new`` columns are the only nondeterministic fields.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Callable
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .. import cache as analysis_cache
from ..cache import cached, obs_digest, timing_digest
from ..core.elw import circuit_elws, incremental_circuit_elws
from ..core.initialization import InitialRetiming, initialize
from ..core.minobswin import RetimingResult
from ..errors import DeadlineExceeded
from ..faultplane import hooks
from ..faultplane.hooks import fault_point
from ..graph.retiming_graph import RetimingGraph
from ..graph.timing import achieved_period
from ..netlist.circuit import Circuit
from ..netlist.validate import validate_circuit
from ..pipeline import (AlgorithmOutcome, PipelineResult, build_problem,
                        compute_observability, rebuild_retimed_states,
                        run_solver, table1_row)
from ..reporting import result_to_dict
from ..ser.analysis import analyze_ser
from ..telemetry import REGISTRY, MetricsRegistry, Tracer
from ..telemetry import spans as telemetry
from .executor import Attempt, FailureRecord, run_ladder
from .guards import GuardReport, verify_retimed
from .manifest import CircuitRecord, RunManifest

#: Seed stride between observability reseed attempts (any odd prime-ish
#: constant works; it only needs to decorrelate the pattern streams).
RESEED_STRIDE = 1009

#: Entries kept by the per-process observability memo cache.
OBS_CACHE_SIZE = 32

#: The per-process (hence, in parallel runs, per-worker) memo cache for
#: the observability-simulation stage: ``(circuit fingerprint, frames,
#: patterns, seed) -> (obs, runtime)``.  Observabilities are
#: retiming-invariant and deterministic given those four keys, so any
#: repeat computation -- the clean reference run of a chaos double-run,
#: a golden-file regeneration, back-to-back determinism checks -- is a
#: pure waste of the dominant simulation cost.
_OBS_CACHE: OrderedDict[tuple[str, int, int, int],
                        tuple[dict[str, float], float]] = OrderedDict()

#: Guards the memo cache: the service worker pool runs several circuits
#: concurrently in one process, and an unlocked reorder-while-evict
#: corrupts the OrderedDict.
_OBS_CACHE_LOCK = threading.Lock()


def clear_obs_cache() -> None:
    """Drop every memoized observability result (test isolation hook)."""
    with _OBS_CACHE_LOCK:
        _OBS_CACHE.clear()


def cached_observability(circuit: Circuit, n_frames: int, n_patterns: int,
                         seed: int) -> tuple[dict[str, float], float]:
    """Memoizing front of :func:`repro.pipeline.compute_observability`.

    Bypassed entirely (no read, no write) while a fault injector is
    installed: chaos runs must visit the ``sim.observability`` injection
    site on every attempt, and results computed under an armed plan must
    never leak into clean runs.
    """
    if hooks.active() is not None:
        return compute_observability(circuit, n_frames=n_frames,
                                     n_patterns=n_patterns, seed=seed)
    key = (circuit.fingerprint(), n_frames, n_patterns, seed)
    with _OBS_CACHE_LOCK:
        hit = _OBS_CACHE.get(key)
        if hit is not None:
            _OBS_CACHE.move_to_end(key)
            return hit
    value = compute_observability(circuit, n_frames=n_frames,
                                  n_patterns=n_patterns, seed=seed)
    with _OBS_CACHE_LOCK:
        _OBS_CACHE[key] = value
        while len(_OBS_CACHE) > OBS_CACHE_SIZE:
            _OBS_CACHE.popitem(last=False)
    return value


def _encode_init(init: InitialRetiming) -> dict[str, Any]:
    return {"r0": [int(x) for x in init.r0], "phi": init.phi,
            "rmin": init.rmin, "phi_base": init.phi_base,
            "used_fallback": init.used_fallback}


def _decode_init(payload: dict[str, Any]) -> InitialRetiming:
    return InitialRetiming(
        r0=np.array(payload["r0"], dtype=np.int64), phi=payload["phi"],
        rmin=payload["rmin"], phi_base=payload["phi_base"],
        used_fallback=bool(payload["used_fallback"]))


def cached_initialize(circuit: Circuit, graph: RetimingGraph, setup: float,
                      hold: float, epsilon: float,
                      maximal_start: bool) -> InitialRetiming:
    """Analysis-cached Sec. V initialization (kind ``"init"``).

    ``graph`` is a pure function of ``circuit``, so the key only needs
    the circuit's timing digest plus the initialization knobs.
    """
    params = {"setup": float(setup), "hold": float(hold),
              "epsilon": float(epsilon),
              "maximal_start": bool(maximal_start)}
    return cached("init", timing_digest(circuit), params,
                  compute=lambda: initialize(graph, setup, hold, epsilon,
                                             maximal_start=maximal_start),
                  encode=_encode_init, decode=_decode_init)


def _encode_solve(result: RetimingResult) -> dict[str, Any]:
    # The trace is dropped: the suite never solves with keep_trace=True,
    # and the stored runtime is the (cold) solve's wall clock -- a
    # volatile field everywhere it surfaces, masked by mask_volatile.
    return {"r": [int(x) for x in result.r],
            "objective": int(result.objective),
            "commits": int(result.commits),
            "iterations": int(result.iterations),
            "passes": int(result.passes),
            "constraints_added": int(result.constraints_added),
            "blocked": int(result.blocked), "runtime": result.runtime}


def _decode_solve(payload: dict[str, Any]) -> RetimingResult:
    return RetimingResult(
        r=np.array(payload["r"], dtype=np.int64),
        objective=payload["objective"], commits=payload["commits"],
        iterations=payload["iterations"], passes=payload["passes"],
        constraints_added=payload["constraints_added"],
        blocked=payload["blocked"], runtime=payload["runtime"])


def cached_run_solver(circuit: Circuit, problem, r0: np.ndarray,
                      algorithm: str, restart: bool,
                      deadline: float | None,
                      obs: dict[str, float],
                      n_patterns: int) -> RetimingResult:
    """Analysis-cached solver dispatch (kind ``"solve"``).

    Bypassed (straight to :func:`repro.pipeline.run_solver`) whenever

    * a fault injector is installed -- ``solve.result.labels`` faults
      corrupt returned labels, and a poisoned cache would leak wrong
      answers into clean warm runs; or
    * a deadline is set -- partial results depend on wall clock and are
      not content-addressable.

    The problem instance is fully determined by the circuit's timing
    digest plus ``(phi, rmin, setup, hold)`` and the integer
    observability counts, which the obs digest and pattern count pin.
    """
    with telemetry.span("run_solver", algorithm=algorithm):
        if hooks.active() is not None or deadline is not None:
            return run_solver(problem, r0, algorithm, restart=restart,
                              deadline=deadline)
        params = {"algorithm": algorithm, "restart": bool(restart),
                  "phi": float(problem.phi), "rmin": float(problem.rmin),
                  "setup": float(problem.setup),
                  "hold": float(problem.hold),
                  "r0": [int(x) for x in r0], "obs": obs_digest(obs),
                  "n_patterns": int(n_patterns)}
        return cached("solve", timing_digest(circuit), params,
                      compute=lambda: run_solver(problem, r0, algorithm,
                                                 restart=restart),
                      encode=_encode_solve, decode=_decode_solve)


def cached_verify_retimed(original: Circuit, retimed: Circuit,
                          graph: RetimingGraph, r: np.ndarray, phi: float,
                          setup: float, *, exact_states: bool,
                          check_cycles: int, n_patterns: int,
                          seed: int) -> GuardReport:
    """Analysis-cached post-retime guard (kind ``"guard"``).

    Bypassed while a fault injector is installed for the same reason as
    the solver cache: the guard exists to catch corrupted results, so it
    must actually run on every chaos attempt.
    """
    def compute() -> GuardReport:
        return verify_retimed(original, retimed, graph, r, phi, setup,
                              exact_states=exact_states,
                              check_cycles=check_cycles,
                              n_patterns=n_patterns, seed=seed)

    with telemetry.span("verify"):
        if hooks.active() is not None:
            return compute()
        params = {"retimed": timing_digest(retimed),
                  "r": [int(x) for x in r], "phi": float(phi),
                  "setup": float(setup),
                  "exact_states": bool(exact_states),
                  "check_cycles": int(check_cycles),
                  "n_patterns": int(n_patterns), "seed": int(seed)}
        return cached("guard", timing_digest(original), params,
                      compute=compute,
                      encode=lambda report: report.to_dict(),
                      decode=lambda payload: GuardReport(
                          ok=bool(payload["ok"]),
                          checks=dict(payload["checks"]),
                          first_bad_cycle=int(payload["first_bad_cycle"]),
                          flush_cycles=int(payload["flush_cycles"]),
                          notes=list(payload["notes"])))


@dataclass(frozen=True)
class SuiteConfig:
    """Configuration of one resilient suite run.

    The experiment knobs mirror :func:`repro.pipeline.optimize_circuit`;
    the resilience knobs (``deadline``, ``max_retries``, ``strict``,
    ``guard``) control failure handling only and therefore do not enter
    the manifest fingerprint.
    """

    circuits: tuple[str, ...]
    scale: float | None = None
    seed: int = 0
    n_frames: int = 15
    n_patterns: int = 256
    epsilon: float = 0.10
    algorithms: tuple[str, ...] = ("minobs", "minobswin")
    maximal_start: bool = False
    restart: bool = True
    #: Per-stage wall-clock budget in seconds (None = unlimited).
    deadline: float | None = None
    #: Extra attempts per ladder rung for retryable failures.
    max_retries: int = 1
    #: Base seconds of the seeded exponential backoff (with jitter)
    #: slept between retries of the same rung; 0 retries immediately.
    #: A resilience knob like ``max_retries``: it changes failure
    #: *pacing* only, never results, so it stays out of the fingerprint.
    retry_backoff: float = 0.0
    #: Propagate the first failure instead of degrading (debug mode).
    strict: bool = False
    #: Run the post-retime verification guard on every solver result.
    guard: bool = True
    guard_cycles: int = 8
    guard_patterns: int = 32
    #: Worker processes for :func:`run_suite` (1 = in-process serial).
    #: An execution knob like ``deadline``: the sharded-parallel path
    #: produces a manifest with the same ``result_checksum`` as a serial
    #: run, so the worker count never enters the fingerprint.
    workers: int = 1
    #: Activate the content-addressed analysis cache (:mod:`repro.cache`)
    #: for the duration of the run.  An execution knob like ``workers``:
    #: warm results are bit-identical to cold ones (that is the cache's
    #: contract, proved by the differential test layer), so neither
    #: ``cache`` nor ``cache_dir`` enters the fingerprint.
    cache: bool = False
    #: On-disk cache tier shared across processes and suite workers;
    #: ``None`` keeps an enabled cache memory-only.  A non-``None`` value
    #: implies ``cache``.
    cache_dir: str | None = None
    #: Write a structured span trace (:mod:`repro.telemetry`) to this
    #: JSONL file for the duration of the run.  An execution knob like
    #: ``workers`` and ``cache``: tracing never changes a result (the
    #: determinism tests prove checksum invariance), so it does not
    #: enter the fingerprint.  Parallel workers trace to
    #: ``<trace_path>.shard-NN.jsonl`` files which the parent merges.
    trace_path: str | None = None
    #: Analysis engine: ``"flat"`` (CSR arena + vectorized kernels),
    #: ``"object"`` (the per-gate dict/object engines) or ``"auto"``
    #: (flat with object fallback).  An execution knob like ``workers``:
    #: the two cores are bit-identical (``tests/flatcore`` proves
    #: checksum parity), so the mode never enters the fingerprint or
    #: any cache key.  Parallel workers inherit it through the pickled
    #: config.
    core: str = "auto"

    def fingerprint(self) -> dict[str, Any]:
        """The result-determining configuration, for manifest matching."""
        return {
            "circuits": list(self.circuits),
            "scale": self.scale,
            "seed": self.seed,
            "n_frames": self.n_frames,
            "n_patterns": self.n_patterns,
            "epsilon": self.epsilon,
            "algorithms": list(self.algorithms),
            "maximal_start": self.maximal_start,
            "restart": self.restart,
        }


@dataclass
class AlgorithmRun:
    """One algorithm's (possibly degraded) outcome on one circuit."""

    outcome: AlgorithmOutcome
    label: str  # "minobswin", "minobswin:partial", "minobs", "identity"
    guard: dict[str, Any] | None = None


@dataclass
class CircuitRun:
    """One circuit's contribution to the suite result."""

    name: str
    row: dict[str, Any]
    report: dict[str, Any] | None
    status: str
    elapsed: float
    failures: list[FailureRecord] = field(default_factory=list)
    result: PipelineResult | None = None
    resumed: bool = False

    def to_record(self) -> CircuitRecord:
        return CircuitRecord(name=self.name, row=self.row,
                             report=self.report, status=self.status,
                             elapsed=self.elapsed, failures=self.failures)

    @classmethod
    def from_record(cls, record: CircuitRecord) -> "CircuitRun":
        return cls(name=record.name, row=record.row, report=record.report,
                   status=record.status, elapsed=record.elapsed,
                   failures=record.failures, resumed=True)


@dataclass
class SuiteResult:
    """Everything a resilient suite run produced."""

    runs: list[CircuitRun]
    #: Fault-injection stats collected from worker processes (parallel
    #: runs only; each entry is one worker injector's ``stats()`` dict).
    fault_stats: list[dict[str, Any]] = field(default_factory=list)

    @property
    def rows(self) -> list[dict[str, Any]]:
        return [run.row for run in self.runs]

    @property
    def reports(self) -> list[dict[str, Any]]:
        return [run.report for run in self.runs if run.report is not None]

    @property
    def failures(self) -> list[FailureRecord]:
        return [f for run in self.runs for f in run.failures]

    @property
    def degraded(self) -> list[CircuitRun]:
        return [run for run in self.runs if run.status != "ok"]


def _identity_result(graph: RetimingGraph) -> RetimingResult:
    return RetimingResult(r=graph.zero_retiming(), objective=0, commits=0,
                          iterations=0, passes=1, constraints_added=0,
                          blocked=0, runtime=0.0)


def _degenerate_initialize(graph: RetimingGraph, setup: float,
                           epsilon: float) -> InitialRetiming:
    """Last-rung initialization: identity start, degenerate R_min.

    The paper's own fallback of Sec. V taken to its floor: keep the
    circuit as-is, constrain the solve to the relaxed zero-retiming
    period, and set R_min to the minimal gate delay so P2' cannot bind
    tighter than a single gate.
    """
    r0 = graph.zero_retiming()
    phi_base = achieved_period(graph, r0, setup)
    delays = [d for d in graph.delays[1:] if d > 0]
    rmin = min(delays) if delays else 0.0
    return InitialRetiming(r0=r0, phi=phi_base * (1.0 + epsilon), rmin=rmin,
                           phi_base=phi_base, used_fallback=True)


def _failed_row(name: str, stage: str,
                graph: RetimingGraph | None) -> dict[str, Any]:
    """A clearly-labeled placeholder row for an unrecoverable circuit."""
    nan = float("nan")
    row: dict[str, Any] = {
        "circuit": name,
        "V": graph.n_vertices - 1 if graph is not None else 0,
        "E": graph.n_edges if graph is not None else 0,
        "FF": graph.register_count() if graph is not None else 0,
        "phi": nan, "ser": nan,
        "ref_ff": 0, "ref_time": 0.0, "ref_ser": nan,
        "new_ff": 0, "new_time": 0.0, "new_J": 0, "new_ser": nan,
        "status": f"failed:{stage}",
    }
    return row


def optimize_resilient(circuit: Circuit, config: SuiteConfig) -> CircuitRun:
    """Run the Table I flow on one circuit, degrading instead of dying.

    Never raises in the default mode (``strict=False``) short of
    ``KeyboardInterrupt`` / ``SystemExit``; the returned row is always
    consumable by :func:`repro.ser.report.format_comparison`, with the
    degradations applied spelled out in ``row["status"]`` and every
    captured failure in ``CircuitRun.failures``.
    """
    from ..flatcore import core_mode

    with telemetry.span("circuit", circuit=circuit.name,
                        core=config.core), core_mode(config.core):
        run = _optimize_resilient(circuit, config)
        telemetry.add_attrs(status=run.status)
        return run


def _optimize_resilient(circuit: Circuit,
                        config: SuiteConfig) -> CircuitRun:
    t0 = time.perf_counter()
    failures: list[FailureRecord] = []
    degradations: list[str] = []
    name = circuit.name

    def ladder(stage, rungs):
        return run_ladder(stage, rungs, circuit=name,
                          max_retries=config.max_retries,
                          deadline=config.deadline, strict=config.strict,
                          failures=failures,
                          backoff=config.retry_backoff,
                          backoff_seed=config.seed)

    # Perf accounting: per-stage wall clocks, analysis-cache counter
    # deltas, incremental-ELW reuse counts and the metrics-registry
    # delta over this circuit.  All of it lands in report["perf"], which
    # mask_volatile masks wholesale -- timings are wall clock and cache
    # counters depend on warmth, so none of it may enter the result
    # checksum.  Set up *before* stage 1 so even a circuit that fails in
    # ``prepare`` reports the timings of whatever it did run.
    cache_obj = analysis_cache.active()
    cache_before = cache_obj.stats.to_dict() if cache_obj is not None \
        else None
    metrics_before = REGISTRY.snapshot()
    stage_times: dict[str, float] = {}
    elw_inc = {"reused": 0, "recomputed": 0, "fallbacks": 0}

    def perf_snapshot() -> dict[str, Any]:
        cache_counters: dict[str, Any] = {"enabled": cache_obj is not None}
        if cache_obj is not None:
            cache_counters.update(cache_obj.stats.delta(cache_before))
        return {"stages": dict(stage_times),
                "elw_incremental": dict(elw_inc),
                "cache": cache_counters,
                "metrics": MetricsRegistry.delta(metrics_before,
                                                 REGISTRY.snapshot())}

    def failure_report(status: str) -> dict[str, Any]:
        # The gave-up twin of the full result_to_dict report: no
        # algorithm outcomes to serialize, but the stage timings and
        # counters of everything that did run are preserved (satellite
        # bugfix: failure paths used to drop perf accounting entirely).
        return {"name": name, "status": status,
                "degradations": list(degradations),
                "failures": [f.to_dict() for f in failures],
                "perf": perf_snapshot()}

    def timed_ladder(stage, rungs):
        t_stage = time.perf_counter()
        with telemetry.span(f"stage:{stage}"):
            try:
                return ladder(stage, rungs)
            finally:
                elapsed = time.perf_counter() - t_stage
                stage_times[stage] = elapsed
                REGISTRY.histogram(
                    f"stage.seconds.{stage}",
                    help="Wall-clock seconds per pipeline stage",
                ).observe(elapsed)

    # ---- stage 1: graph construction (no meaningful degradation) -----
    graph: RetimingGraph | None = None
    t_prepare = time.perf_counter()
    try:
        with telemetry.span("stage:prepare"):
            validate_circuit(circuit)
            graph = RetimingGraph.from_circuit(circuit)
    except Exception as exc:
        stage_times["prepare"] = time.perf_counter() - t_prepare
        REGISTRY.histogram(
            "stage.seconds.prepare",
            help="Wall-clock seconds per pipeline stage",
        ).observe(stage_times["prepare"])
        if config.strict:
            raise
        failures.append(FailureRecord(
            circuit=name, stage="prepare", rung="graph",
            error=type(exc).__name__, message=str(exc),
            elapsed=time.perf_counter() - t0, attempt=0, action="gave-up"))
        return CircuitRun(name=name, row=_failed_row(name, "prepare", None),
                          report=failure_report("failed:prepare"),
                          status="failed:prepare",
                          elapsed=time.perf_counter() - t0,
                          failures=failures)
    stage_times["prepare"] = time.perf_counter() - t_prepare
    REGISTRY.histogram(
        "stage.seconds.prepare",
        help="Wall-clock seconds per pipeline stage",
    ).observe(stage_times["prepare"])

    setup = circuit.library.setup_time
    hold = circuit.library.hold_time

    def run_stages() -> CircuitRun:
        # ---- stage 2: observability (retry-with-reseed, memoized) ----
        def sim_obs(ctx: Attempt):
            return cached_observability(
                circuit, n_frames=config.n_frames,
                n_patterns=config.n_patterns,
                seed=config.seed + RESEED_STRIDE * ctx.attempt)

        obs_stage = timed_ladder("observability",
                                 [("signature-sim", sim_obs)])
        obs, obs_runtime = obs_stage.value
        if obs_stage.attempts > 1:
            degradations.append(f"obs=attempt{obs_stage.attempts}")

        # ---- stage 3: initialization ---------------------------------
        init_stage = timed_ladder("initialize", [
            ("setup-hold", lambda ctx: cached_initialize(
                circuit, graph, setup, hold, config.epsilon,
                config.maximal_start)),
            ("degenerate", lambda ctx: _degenerate_initialize(
                graph, setup, config.epsilon)),
        ])
        init = init_stage.value
        if init_stage.degraded:
            degradations.append("init=degenerate")

        # ---- original-circuit SER (reference for every outcome) ------
        ser_stage = timed_ladder("ser-original", [
            ("analyze", lambda ctx: analyze_ser(circuit, init.phi, setup,
                                                hold, obs=obs))])
        ser_original = ser_stage.value

        problem = build_problem(graph, init, obs, config.n_patterns,
                                setup, hold)
        original_registers = graph.register_count()

        def make_rung(solver: str, algorithm: str):
            def attempt(ctx: Attempt) -> AlgorithmRun:
                if solver == "identity":
                    outcome = AlgorithmOutcome(
                        result=_identity_result(graph), circuit=circuit,
                        ser=ser_original, registers=original_registers)
                    return AlgorithmRun(outcome=outcome, label="identity")
                label = solver
                try:
                    solved = cached_run_solver(
                        circuit, problem, init.r0, solver,
                        restart=config.restart,
                        deadline=ctx.deadline.remaining(),
                        obs=obs, n_patterns=config.n_patterns)
                except DeadlineExceeded as exc:
                    if exc.partial is None:
                        raise
                    ctx.record(exc, "partial-result")
                    solved = exc.partial
                    label = f"{solver}:partial"
                retimed, exact = rebuild_retimed_states(
                    circuit, graph, solved.r,
                    name=f"{name}_{algorithm}")
                guard_dict = None
                if config.guard and solved.r.any():
                    guard = cached_verify_retimed(
                        circuit, retimed, graph, solved.r, init.phi,
                        setup, exact_states=exact,
                        check_cycles=config.guard_cycles,
                        n_patterns=config.guard_patterns,
                        seed=config.seed)
                    guard_dict = guard.to_dict()
                    guard.raise_if_failed(f"{name}/{label}")
                # Incremental ELW reuse: the retimed rebuild shares every
                # gate with the original, so its timing analysis starts
                # from the original's ELWs and recomputes only the cones
                # the register moves disturbed.
                elws, inc = incremental_circuit_elws(
                    retimed, circuit,
                    circuit_elws(circuit, init.phi, setup, hold),
                    init.phi, setup, hold)
                elw_inc["reused"] += inc["reused"]
                elw_inc["recomputed"] += inc["recomputed"]
                elw_inc["fallbacks"] += int(inc["fallback"])
                ser = analyze_ser(retimed, init.phi, setup, hold, obs=obs,
                                  elws=elws)
                outcome = AlgorithmOutcome(result=solved, circuit=retimed,
                                           ser=ser,
                                           registers=retimed.n_dffs)
                return AlgorithmRun(outcome=outcome, label=label,
                                    guard=guard_dict)
            return attempt

        result = PipelineResult(
            name=name, vertices=graph.n_vertices - 1, edges=graph.n_edges,
            registers=original_registers, init=init,
            ser_original=ser_original, obs=obs, obs_runtime=obs_runtime)

        guards: dict[str, Any] = {}
        for algorithm in config.algorithms:
            chain = ["minobswin", "minobs", "identity"] \
                if algorithm == "minobswin" else ["minobs", "identity"]
            rungs = [(solver, make_rung(solver, algorithm))
                     for solver in chain]
            stage = timed_ladder(f"solve:{algorithm}", rungs)
            run: AlgorithmRun = stage.value
            result.outcomes[algorithm] = run.outcome
            if run.guard is not None:
                guards[algorithm] = run.guard
            if run.label != algorithm:
                degradations.append(f"{algorithm}={run.label}")

        status = "ok" if not degradations else ";".join(degradations)
        row = table1_row(result)
        row["status"] = status
        report = result_to_dict(result)
        report["status"] = status
        report["degradations"] = list(degradations)
        report["failures"] = [f.to_dict() for f in failures]
        if guards:
            report["guards"] = guards
        report["perf"] = perf_snapshot()
        return CircuitRun(name=name, row=row, report=report, status=status,
                          elapsed=time.perf_counter() - t0,
                          failures=failures, result=result)

    try:
        return run_stages()
    except Exception as exc:
        if config.strict:
            raise
        stage = getattr(exc, "stage", None) or "pipeline"
        failures.append(FailureRecord(
            circuit=name, stage=str(stage), rung="",
            error=type(exc).__name__, message=str(exc),
            elapsed=time.perf_counter() - t0, attempt=0, action="gave-up"))
        return CircuitRun(name=name, row=_failed_row(name, str(stage), graph),
                          report=failure_report(f"failed:{stage}"),
                          status=f"failed:{stage}",
                          elapsed=time.perf_counter() - t0,
                          failures=failures)


def run_suite(config: SuiteConfig,
              manifest_path: str | None = None,
              progress: Callable[[str], None] | None = None,
              circuit_factory: Callable[[str], Circuit] | None = None,
              workers: int | None = None,
              progress_events: Callable[[str, str], None] | None = None,
              ) -> SuiteResult:
    """Run a benchmark suite with crash isolation and checkpointing.

    Parameters
    ----------
    config:
        The suite configuration (circuit names, experiment knobs,
        resilience knobs).
    manifest_path:
        Checkpoint file.  When it already exists, the run *resumes*:
        the stored configuration fingerprint must match
        (:class:`~repro.errors.ManifestError` otherwise), completed
        circuits are loaded verbatim and skipped, and each newly
        finished circuit is checkpointed with an atomic rewrite.  When
        it does not exist it is created.  ``None`` disables
        checkpointing.
    progress:
        Optional callback receiving one human-readable line per circuit.
    circuit_factory:
        Maps a circuit name to a :class:`Circuit`; defaults to the
        Table I suite generator at ``config.scale`` / ``config.seed``.
        A factory exception is handled like any other circuit failure.
    workers:
        Worker-process count; overrides ``config.workers`` when given.
        Any value above 1 (with at least two circuits to run) delegates
        to the sharded executor of :mod:`repro.runtime.parallel`, which
        produces the same rows and a manifest with the same
        ``result_checksum`` as the serial path.
    progress_events:
        Optional structured progress callback ``(circuit_name, line)``;
        receives the same lines as ``progress`` tagged with the circuit
        they belong to (the parallel executor's ordered-drain feed).
    """
    n_workers = config.workers if workers is None else workers
    if n_workers > 1 and len(config.circuits) > 1:
        from .parallel import run_parallel_suite

        return run_parallel_suite(config, manifest_path=manifest_path,
                                  progress=progress,
                                  progress_events=progress_events,
                                  circuit_factory=circuit_factory,
                                  workers=n_workers)

    with _maybe_tracing(config):
        if config.cache or config.cache_dir is not None:
            # Opt-in analysis cache for the duration of the run.  Each
            # worker of a parallel run takes this branch inside its own
            # process (the shard path re-enters run_suite with
            # workers=1), so a shared cache_dir is the cross-process
            # tier.
            with analysis_cache.activated(
                    analysis_cache.AnalysisCache(config.cache_dir)):
                return _run_suite_serial(config, manifest_path, progress,
                                         circuit_factory, progress_events)
        return _run_suite_serial(config, manifest_path, progress,
                                 circuit_factory, progress_events)


@contextmanager
def _maybe_tracing(config: SuiteConfig):
    """Install a span tracer at ``config.trace_path`` for one run.

    A no-op when tracing is off or a tracer is already installed -- a
    parallel worker traces to its shard file (installed by
    :mod:`repro.runtime.parallel` before it re-enters :func:`run_suite`),
    and the inner call must not displace it.
    """
    if config.trace_path is None or telemetry.active() is not None:
        yield None
        return
    tracer = Tracer(config.trace_path,
                    meta={"kind": "suite", "circuits": list(config.circuits),
                          "seed": config.seed})
    previous = telemetry.install(tracer)
    try:
        yield tracer
    finally:
        telemetry.install(previous)
        tracer.close()


def _run_suite_serial(config: SuiteConfig,
                      manifest_path: str | None,
                      progress: Callable[[str], None] | None,
                      circuit_factory: Callable[[str], Circuit] | None,
                      progress_events: Callable[[str, str], None] | None,
                      ) -> SuiteResult:
    if circuit_factory is None:
        from ..circuits.suites import table1_circuit

        def circuit_factory(row_name: str) -> Circuit:
            return table1_circuit(row_name, scale=config.scale,
                                  seed=config.seed)

    manifest: RunManifest | None = None
    if manifest_path is not None:
        import os

        if os.path.exists(manifest_path):
            manifest = RunManifest.load(manifest_path)
            manifest.check_config(config.fingerprint())
        else:
            manifest = RunManifest(config=config.fingerprint(),
                                   circuits=list(config.circuits))
            manifest.save(manifest_path)

    def note(circuit: str, message: str) -> None:
        if progress is not None:
            progress(message)
        if progress_events is not None:
            progress_events(circuit, message)

    runs: list[CircuitRun] = []
    for name in config.circuits:
        if manifest is not None and manifest.is_complete(name):
            run = CircuitRun.from_record(manifest.completed[name])
            runs.append(run)
            note(name, f"{name}: resumed from manifest ({run.status})")
            continue
        t0 = time.perf_counter()
        try:
            fault_point("suite.circuit.start", circuit=name)
            circuit = circuit_factory(name)
            run = optimize_resilient(circuit, config)
        except Exception as exc:  # crash isolation around the whole flow
            if config.strict:
                raise
            run = CircuitRun(
                name=name, row=_failed_row(name, "circuit", None),
                report=None, status="failed:circuit",
                elapsed=time.perf_counter() - t0,
                failures=[FailureRecord(
                    circuit=name, stage="circuit", rung="",
                    error=type(exc).__name__, message=str(exc),
                    elapsed=time.perf_counter() - t0, attempt=0,
                    action="gave-up")])
        runs.append(run)
        if manifest is not None:
            manifest.record(run.to_record())
            try:
                manifest.save(manifest_path)
            except OSError as exc:
                # Checkpointing is advisory: a full disk must not kill
                # the run.  The manifest keeps every record in memory,
                # so the next successful save repairs the file.
                if config.strict:
                    raise
                note(name, f"warning: checkpoint save failed ({exc}); "
                     f"continuing without checkpoint")
            else:
                fault_point("suite.checkpoint", circuit=name)
        note(name, f"{name}: {run.status} ({run.elapsed:.2f}s)")
    return SuiteResult(runs=runs)

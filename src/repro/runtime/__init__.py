"""Resilient execution runtime: deadlines, retries, degradation ladders,
crash-isolated suite runs with checkpoint/resume, and post-retime
verification guards.

Layering: :mod:`repro.core` and :mod:`repro.pipeline` stay importable
without this package (the solvers take plain ``deadline`` /
``should_stop`` arguments); everything here builds on top of them.
"""

from .deadline import Deadline, budget_seconds
from .executor import (NON_RETRYABLE, Attempt, FailureRecord, Rung,
                       StageOutcome, run_ladder)
from .guards import GuardReport, default_flush_cycles, verify_retimed
from .manifest import (MANIFEST_FORMAT, MANIFEST_VERSION, CircuitRecord,
                       RunManifest)
from .suite import (AlgorithmRun, CircuitRun, SuiteConfig, SuiteResult,
                    optimize_resilient, run_suite)

__all__ = [
    "Deadline", "budget_seconds",
    "NON_RETRYABLE", "Attempt", "FailureRecord", "Rung", "StageOutcome",
    "run_ladder",
    "GuardReport", "default_flush_cycles", "verify_retimed",
    "MANIFEST_FORMAT", "MANIFEST_VERSION", "CircuitRecord", "RunManifest",
    "AlgorithmRun", "CircuitRun", "SuiteConfig", "SuiteResult",
    "optimize_resilient", "run_suite",
]

"""Sharded parallel suite execution with a deterministic merge.

:func:`run_parallel_suite` is the ``workers > 1`` back end of
:func:`repro.runtime.suite.run_suite`.  It partitions the pending
circuits into per-worker *shards* (longest-job-first by a cheap
|V|*|E| size estimate from the published Table I statistics), runs each
shard through the ordinary serial ``run_suite`` -- retry ladder,
per-circuit deadlines, crash isolation and all -- inside a
``ProcessPoolExecutor`` worker, and merges the results back into the
main run manifest in canonical circuit order.

Determinism contract
--------------------
Every result-determining quantity of a suite run is a pure function of
the :class:`~repro.runtime.suite.SuiteConfig`, computed independently
per circuit; sharding only changes *where* each circuit is computed.
The merge therefore reproduces the exact serial rows, records and
failure lists, and the merged manifest's ``result_checksum`` (the
time-masked digest, see :mod:`repro.runtime.manifest`) is identical to
a ``workers=1`` run's.  Progress lines are not streamed as they happen:
workers tag each line with its circuit and batch them into the shard's
return payload, and the parent buffers them per circuit and emits them
strictly in canonical circuit order, each circuit only after its record
is durably merged -- so the observable progress log of a parallel run
is a deterministic reordering of the serial one, never an interleaving.
(No live progress channel exists on purpose: a queue broker would
outlive a hard-killed parent and hold its stdio pipes open, hanging any
supervisor that waits for the parent's output.)

Crash consistency
-----------------
Each worker checkpoints its shard to a sibling file of the main
manifest (``<manifest>.shard-NN.json``) using the same atomic
fsync+rename protocol.  The parent folds shards into the main manifest
when a shard finishes, and *absorbs* any leftover shard files both at
startup (a previous parent died) and when the process pool breaks (a
worker died -- e.g. an injected ``kill`` fault), so a ``--resume`` rerun
loses at most the circuits that were mid-flight.  A broken pool is
reported as :class:`~repro.errors.WorkerCrashError` *after* the salvage,
and the CLI maps it to the kill exit code so the chaos restart harness
treats it like any other crash: restart, resume, converge.

Fault-plane composition
-----------------------
A fault plan installed in the parent (``REPRO_FAULT_PLAN`` or
:func:`repro.faultplane.hooks.install`) propagates into every worker:
the worker discards the injector state inherited across ``fork`` and
installs a fresh injector running the same fault specs under a
shard-derived seed (:func:`repro.faultplane.plan.derive_shard_plan`),
so probabilistic faults decorrelate across shards while the whole fault
sequence stays a pure function of (plan seed, shard index).  Worker
injector stats return to the parent in
:attr:`~repro.runtime.suite.SuiteResult.fault_stats` for the chaos
scorecard.
"""

from __future__ import annotations

import glob
import os
import pickle
import time
from collections.abc import Callable
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from typing import Any

from ..circuits.suites import TABLE1_ROWS
from ..errors import ExecutionError, ManifestError, WorkerCrashError
from ..faultplane import hooks
from ..faultplane.plan import FaultInjector, FaultPlan, derive_shard_plan
from ..netlist.circuit import Circuit
from ..telemetry import Tracer
from ..telemetry import spans as telemetry
from ..telemetry.spans import merge_shard_traces, shard_trace_path
from .manifest import CircuitRecord, RunManifest
from .suite import CircuitRun, SuiteConfig, SuiteResult

#: |V| * |E| of each Table I row (paper statistics) -- the shard cost
#: model.  The generator scales both counts linearly, so the product
#: preserves the relative ordering at every scale.
_COSTS: dict[str, int] = {row.name: row.vertices * row.edges
                          for row in TABLE1_ROWS}


def estimate_cost(name: str) -> int:
    """Cheap relative cost estimate of one suite circuit.

    ``|V| * |E|`` from the published Table I statistics; circuits not in
    the catalog (custom ``circuit_factory`` runs) rank as cost 0, which
    degrades the longest-job-first heuristic to balanced round-robin --
    still deterministic, just less informed.
    """
    return _COSTS.get(name, 0)


def partition_lpt(names: list[str], workers: int,
                  cost: Callable[[str], int] = estimate_cost,
                  ) -> list[list[str]]:
    """Longest-processing-time-first partition into at most ``workers``
    shards.

    Circuits are placed one at a time, most expensive first (ties broken
    by canonical position), each onto the currently lightest shard (ties
    broken by lowest shard index) -- the classic LPT greedy, within 4/3
    of the optimal makespan.  Within each shard the canonical order is
    restored, and empty shards are dropped.  Fully deterministic.
    """
    k = min(workers, len(names))
    if k <= 0:
        return []
    position = {name: index for index, name in enumerate(names)}
    ranked = sorted(names, key=lambda n: (-cost(n), position[n]))
    shards: list[list[str]] = [[] for _ in range(k)]
    loads = [0] * k
    for name in ranked:
        lightest = min(range(k), key=lambda j: (loads[j], j))
        shards[lightest].append(name)
        loads[lightest] += max(cost(name), 1)
    return [sorted(shard, key=position.__getitem__)
            for shard in shards if shard]


def shard_path(manifest_path: str, shard_index: int) -> str:
    """Checkpoint file of one worker shard (sibling of the manifest)."""
    return f"{manifest_path}.shard-{shard_index:02d}.json"


def shard_paths(manifest_path: str) -> list[str]:
    """Existing shard checkpoint files of a manifest, sorted."""
    return sorted(glob.glob(glob.escape(manifest_path) + ".shard-*.json"))


def absorb_shard_files(manifest: RunManifest, manifest_path: str,
                       ) -> list[str]:
    """Fold every on-disk shard checkpoint into the main manifest.

    Loadable shards are absorbed (the main manifest is saved *before*
    any shard file is deleted, so a crash mid-absorb never loses a
    record); torn shards are deleted -- they hold only the in-flight
    write a dying worker failed to complete, which the shard protocol
    already guarantees is the sole possible loss.  Returns the absorbed
    circuit names in canonical order.
    """
    absorbed: list[str] = []
    loadable: list[str] = []
    for path in shard_paths(manifest_path):
        try:
            shard = RunManifest.load(path)
        except ManifestError:
            try:
                os.unlink(path)
            except OSError:
                pass
            continue
        absorbed.extend(manifest.absorb(shard))
        loadable.append(path)
    if absorbed:
        manifest.save(manifest_path)
    for path in loadable:
        try:
            os.unlink(path)
        except OSError:
            pass
    return absorbed


def _parent_watchdog(parent_pid: int, poll_seconds: float = 1.0) -> None:
    """Exit hard as soon as this process is orphaned.

    A pool worker must never outlive its parent: if the parent dies
    without cleanup (SIGKILL, ``os._exit`` from an injected kill fault),
    idle workers stay blocked on the pool's call-queue pipe forever --
    every worker inherited every other worker's write end across
    ``fork``, so the EOF that would wake them never comes -- and the
    zombies keep the parent's stdio pipes open, hanging any supervisor
    that waits for the run's output.  Polling ``getppid`` is the
    portable way out: reparenting (to init or a subreaper) means the
    parent is gone, and ``os._exit`` skips the very cleanup handlers a
    half-dead pool can deadlock in.
    """
    while os.getppid() == parent_pid:
        time.sleep(poll_seconds)
    os._exit(1)


def _worker_init(parent_pid: int) -> None:
    """Pool-worker initializer: start the orphan watchdog.

    ``parent_pid`` is captured by the *parent* at pool creation, not
    via ``os.getppid()`` here: a worker whose parent is hard-killed
    during worker startup would otherwise record the pid it was
    reparented to (init or a subreaper) and poll it forever, surviving
    as exactly the orphan the watchdog exists to reap.
    """
    import threading

    threading.Thread(target=_parent_watchdog, args=(parent_pid,),
                     daemon=True).start()


def _shard_worker(shard_index: int, names: tuple[str, ...],
                  config: SuiteConfig, shard_manifest: str | None,
                  circuit_factory: Callable[[str], Circuit] | None,
                  plan_json: str | None, stats_path: str | None,
                  ) -> dict[str, Any]:
    """Run one shard in a worker process (module-level: must pickle).

    Discards any injector state inherited across ``fork`` and, when the
    parent ran under a fault plan, installs a fresh injector on the
    shard-derived seed.  Progress lines, completed records and injector
    stats all travel back as plain data in the return value -- no live
    channel to the parent.  A live queue would need a broker (a
    ``multiprocessing.Manager`` server or a feeder thread) that outlives
    a hard-killed parent and keeps its inherited stdio pipes open,
    deadlocking any supervisor that waits for the parent's output; the
    parent only surfaces lines after a shard's records are durably
    merged anyway, so nothing is lost by batching them.
    """
    from .suite import run_suite  # deferred: avoid import-time cycle

    hooks.uninstall()  # forked copy of the parent's injector, if any
    injector = None
    if plan_json is not None:
        plan = derive_shard_plan(FaultPlan.from_json(plan_json),
                                 shard_index)
        injector = FaultInjector(plan, stats_path=stats_path)
        hooks.install(injector)

    # Per-shard span tracer: the forked copy of any parent tracer holds
    # a shared file handle and must not be written through; each worker
    # traces to its own <trace>.shard-NN.jsonl with an id prefix that
    # keeps span ids globally unique, and the parent merges the shards
    # after the pool drains.
    telemetry.uninstall()
    tracer = None
    if config.trace_path is not None:
        tracer = Tracer(shard_trace_path(config.trace_path, shard_index),
                        prefix=f"s{shard_index:02d}-",
                        meta={"kind": "shard", "shard": shard_index,
                              "circuits": list(names)})
        telemetry.install(tracer)

    lines: list[tuple[str, str]] = []

    def push(circuit: str, line: str) -> None:
        lines.append((circuit, line))

    try:
        shard_config = replace(config, circuits=tuple(names), workers=1,
                               trace_path=None)
        result = run_suite(shard_config, manifest_path=shard_manifest,
                           circuit_factory=circuit_factory, workers=1,
                           progress_events=push)
    finally:
        if injector is not None:
            injector.flush_stats()
            hooks.uninstall()
        if tracer is not None:
            telemetry.uninstall()
            tracer.close()
    return {
        "shard": shard_index,
        "records": [(run.name, run.to_record().to_dict())
                    for run in result.runs],
        "lines": lines,
        "fault_stats": injector.stats() if injector is not None else None,
    }


def run_parallel_suite(config: SuiteConfig,
                       manifest_path: str | None = None,
                       progress: Callable[[str], None] | None = None,
                       progress_events: Callable[[str, str], None] | None
                       = None,
                       circuit_factory: Callable[[str], Circuit] | None
                       = None,
                       workers: int = 2) -> SuiteResult:
    """Sharded-parallel :func:`repro.runtime.suite.run_suite`.

    Same contract as the serial path -- resumable manifest, per-circuit
    crash isolation, progress callbacks -- plus the determinism, crash
    consistency and fault-plane guarantees documented in the module
    docstring.  ``circuit_factory`` must be picklable (a module-level
    function); a closure raises :class:`~repro.errors.ExecutionError`
    up front rather than a cryptic pool failure mid-run.
    """
    if circuit_factory is not None:
        try:
            pickle.dumps(circuit_factory)
        except Exception as exc:
            raise ExecutionError(
                f"workers={workers} requires a picklable circuit_factory "
                f"(a module-level function, not a lambda or closure); "
                f"got {circuit_factory!r}: {exc}") from exc

    def note(circuit: str, message: str) -> None:
        if progress is not None:
            progress(message)
        if progress_events is not None:
            progress_events(circuit, message)

    # ---- manifest: load-or-create, then salvage stale shard files ----
    manifest: RunManifest | None = None
    if manifest_path is not None:
        if os.path.exists(manifest_path):
            manifest = RunManifest.load(manifest_path)
            manifest.check_config(config.fingerprint())
        else:
            manifest = RunManifest(config=config.fingerprint(),
                                   circuits=list(config.circuits))
            manifest.save(manifest_path)
        absorb_shard_files(manifest, manifest_path)

    records: dict[str, CircuitRecord] = \
        dict(manifest.completed) if manifest is not None else {}
    resumed = set(records)
    for name in config.circuits:
        if name in resumed:
            note(name, f"{name}: resumed from manifest "
                 f"({records[name].status})")
    pending = [name for name in config.circuits if name not in records]

    stats_by_shard: dict[int, dict[str, Any]] = {}
    if pending:
        shards = partition_lpt(pending, workers)

        # Parent fault plan (if any) propagates with derived seeds.
        parent_injector = hooks.active()
        plan_json = parent_injector.plan.to_json() \
            if parent_injector is not None else None
        stats_path = getattr(parent_injector, "stats_path", None) \
            if parent_injector is not None else None

        #: Worker progress lines, buffered per circuit until the emit
        #: frontier (canonical order over ``pending``) reaches them.
        buffers: dict[str, list[str]] = {name: [] for name in pending}
        closed: set[str] = set()
        emit_index = 0

        executor = ProcessPoolExecutor(max_workers=len(shards),
                                       initializer=_worker_init,
                                       initargs=(os.getpid(),))
        try:
            futures = {}
            for index, shard in enumerate(shards):
                target = shard_path(manifest_path, index) \
                    if manifest_path is not None else None
                future = executor.submit(
                    _shard_worker, index, tuple(shard), config, target,
                    circuit_factory, plan_json, stats_path)
                futures[future] = (index, shard)
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining,
                                       return_when=FIRST_COMPLETED)
                for future in sorted(done, key=lambda f: futures[f][0]):
                    index, shard = futures[future]
                    try:
                        payload = future.result()
                    except BrokenProcessPool as exc:
                        salvaged: list[str] = []
                        if manifest is not None:
                            salvaged = absorb_shard_files(manifest,
                                                          manifest_path)
                        raise WorkerCrashError(
                            f"suite worker died while running shard "
                            f"{index} ({', '.join(shard)}); "
                            f"{len(salvaged)} in-flight checkpointed "
                            f"circuit(s) were salvaged into the "
                            f"manifest -- rerun with --resume to "
                            f"continue") from exc
                    for name, data in payload["records"]:
                        record = CircuitRecord.from_dict(name, data)
                        records[name] = record
                        closed.add(name)
                        if manifest is not None:
                            manifest.record(record)
                    for circuit, line in payload["lines"]:
                        buffers.setdefault(circuit, []).append(line)
                    if payload["fault_stats"] is not None:
                        stats_by_shard[index] = payload["fault_stats"]
                    if manifest is not None:
                        try:
                            manifest.save(manifest_path)
                        except OSError as exc:
                            # Advisory, exactly like the serial path: a
                            # full disk must not kill the run.
                            if config.strict:
                                raise
                            note(shard[0],
                                 f"warning: checkpoint save failed "
                                 f"({exc}); continuing without "
                                 f"checkpoint")
                        else:
                            target = shard_path(manifest_path, index)
                            try:
                                os.unlink(target)
                            except OSError:
                                pass
                    # Emit buffered lines, canonical order only, and
                    # only after the records are durably merged -- a
                    # surfaced "computed" line is a kept promise.
                    while emit_index < len(pending) and \
                            pending[emit_index] in closed:
                        name = pending[emit_index]
                        for line in buffers.get(name, []):
                            note(name, line)
                        emit_index += 1
        except KeyboardInterrupt:
            # Operator interrupt (the CLI maps SIGTERM/SIGINT here):
            # salvage every completed shard checkpoint into the main
            # manifest before stopping, so a --resume rerun loses at
            # most the circuits that were mid-flight.
            if manifest is not None:
                try:
                    absorb_shard_files(manifest, manifest_path)
                except (OSError, ManifestError):
                    pass  # best-effort: never mask the interrupt
            raise
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    if config.trace_path is not None:
        # All workers have returned (the success path drains the pool),
        # so every shard trace is complete: fold them into the main
        # trace in canonical shard order.  On a worker crash the raise
        # above skips this, leaving the shard files on disk for
        # post-mortem reading.
        merge_shard_traces(config.trace_path)

    runs: list[CircuitRun] = []
    for name in config.circuits:
        record = records.get(name)
        if record is None:
            continue  # unreachable on the success path
        run = CircuitRun.from_record(record)
        run.resumed = name in resumed
        runs.append(run)
    fault_stats = [stats_by_shard[index]
                   for index in sorted(stats_by_shard)]
    return SuiteResult(runs=runs, fault_stats=fault_stats)

"""Wall-clock deadlines with cooperative cancellation.

A :class:`Deadline` is a monotonic wall-clock budget shared by one stage
attempt.  The core solvers deliberately do not import this module (core
sits below runtime in the layering); instead they accept a plain float
budget plus a ``should_stop`` callback, both of which a ``Deadline``
produces via :meth:`Deadline.remaining` and :meth:`Deadline.as_should_stop`.
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable

from ..errors import DeadlineExceeded


class Deadline:
    """A wall-clock budget started at construction time.

    Parameters
    ----------
    budget:
        Seconds until expiry, or ``None`` for no limit.
    clock:
        Monotonic clock (injectable for tests); defaults to
        :func:`time.perf_counter`.
    """

    __slots__ = ("budget", "started", "_clock")

    def __init__(self, budget: float | None,
                 clock: Callable[[], float] = time.perf_counter):
        if budget is not None and budget < 0:
            raise ValueError(f"deadline budget must be >= 0, got {budget!r}")
        self.budget = None if budget is None else float(budget)
        self._clock = clock
        self.started = clock()

    @classmethod
    def unlimited(cls) -> "Deadline":
        """A deadline that never expires."""
        return cls(None)

    def elapsed(self) -> float:
        """Seconds since the deadline started."""
        return self._clock() - self.started

    def remaining(self) -> float | None:
        """Seconds left (clamped at 0), or ``None`` when unlimited.

        The return value is exactly what the solvers accept as their
        ``deadline`` argument.
        """
        if self.budget is None:
            return None
        return max(0.0, self.budget - self.elapsed())

    def expired(self) -> bool:
        """True once the budget is spent."""
        return self.budget is not None and self.elapsed() > self.budget

    def check(self, stage: str = "stage") -> None:
        """Raise :class:`~repro.errors.DeadlineExceeded` when expired."""
        if self.expired():
            elapsed = self.elapsed()
            raise DeadlineExceeded(
                f"{stage} exceeded its {self.budget:g}s deadline "
                f"({elapsed:.3f}s elapsed)", stage=stage, elapsed=elapsed)

    def as_should_stop(self) -> Callable[[], bool]:
        """A zero-argument cancellation predicate for cooperative loops."""
        return self.expired

    def __repr__(self) -> str:
        budget = "inf" if self.budget is None else f"{self.budget:g}s"
        return f"Deadline(budget={budget}, elapsed={self.elapsed():.3f}s)"


def budget_seconds(deadline: "Deadline | float | None") -> float | None:
    """Normalize a deadline-ish value to remaining seconds (or None).

    Accepts a :class:`Deadline`, a plain number of seconds, ``math.inf``
    or ``None``; used by call sites that take either form.
    """
    if deadline is None:
        return None
    if isinstance(deadline, Deadline):
        return deadline.remaining()
    value = float(deadline)
    return None if math.isinf(value) else value

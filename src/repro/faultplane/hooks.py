"""The fault-injection hook layer: the only fault-plane code on hot paths.

Every instrumented module calls :func:`fault_point` (or one of the
``filter_*`` variants) at its named injection sites.  In production no
injector is installed, so each call is a single module-global ``None``
check -- the sites compile to a no-op and the instrumented pipeline is
bit-identical to an uninstrumented one (certified by
``benchmarks/bench_runtime_overhead.py`` and the chaos test suite).

This module is deliberately dependency-free (no imports from the rest of
:mod:`repro`), so any layer -- :mod:`repro.core`, :mod:`repro.sim`, the
netlist parsers, the runtime -- may import it without layering concerns.
The injector object itself lives in :mod:`repro.faultplane.plan`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

#: The installed :class:`~repro.faultplane.plan.FaultInjector`, or ``None``
#: (the production default: every site is a no-op).
_INJECTOR: Any = None


def active() -> Any:
    """The currently installed injector, or ``None``."""
    return _INJECTOR


def install(injector: Any) -> Any:
    """Install ``injector`` globally; returns the previous one."""
    global _INJECTOR
    previous = _INJECTOR
    _INJECTOR = injector
    return previous


def uninstall() -> Any:
    """Remove any installed injector; returns it."""
    return install(None)


@contextmanager
def installed(injector: Any) -> Iterator[Any]:
    """Context manager: install ``injector``, restore the previous one."""
    previous = install(injector)
    try:
        yield injector
    finally:
        install(previous)


def fault_point(site: str, **context: Any) -> None:
    """Visit the named injection site.

    No-op unless an injector is installed; an armed fault raises the
    injected exception (or hard-kills the process for ``kill`` faults).
    ``context`` is free-form metadata recorded with the injection event.
    """
    if _INJECTOR is not None:
        _INJECTOR.visit(site, context)


def filter_bytes(site: str, data: bytes) -> bytes:
    """Pass ``data`` through the byte-corruption faults of ``site``.

    Identity unless an injector with an armed ``torn``/``garbage`` fault
    matching ``site`` is installed.
    """
    if _INJECTOR is None:
        return data
    return _INJECTOR.filter_bytes(site, data)


def filter_labels(site: str, labels: Any) -> Any:
    """Pass retiming labels through the ``corrupt-labels`` faults of
    ``site``.  Identity unless such a fault is installed and armed."""
    if _INJECTOR is None:
        return labels
    return _INJECTOR.filter_labels(site, labels)

"""Deterministic fault plans and the injector that executes them.

A :class:`FaultPlan` is a seedable, serializable description of *what to
break, where, and when*: a list of :class:`FaultSpec` entries, each
naming an injection site (exact name or glob), a fault kind, a
trigger-on-Nth-call threshold, an arm count and a firing probability.
The :class:`FaultInjector` executes a plan deterministically: the same
plan and seed reproduce the exact same fault sequence, so every chaos
failure is replayable from its seed.

Fault kinds and the real failures they model (the taxonomy of
``docs/algorithm.md`` Sec. 7/8):

=================  ====================================================
``transient``      a stochastic hiccup (``RuntimeError``): retryable
``deadline``       a wall-clock expiry (:class:`DeadlineExceeded`):
                   deterministic, degrades without retry
``memory``         an allocation failure (``MemoryError``):
                   deterministic, degrades without retry
``oserror``        an I/O failure (``OSError``), e.g. a full disk
``kill``           a hard crash: ``os._exit`` with
                   :data:`KILL_EXIT_CODE`, no cleanup handlers -- models
                   SIGKILL / power loss for the crash-consistency
                   harness (subprocess runs only)
``hang``           a call that never returns (stuck native kernel,
                   lost lock): blocks until the sandbox watchdog
                   escalates SIGTERM -> SIGKILL (subprocess runs only)
``oom``            runaway allocation: grows real memory until the
                   worker's rlimit (or the machine) refuses, surfacing
                   the resulting ``MemoryError`` (subprocess runs only)
``segfault``       a native-level crash (``SIGSEGV``), e.g. a bug in a
                   C extension: the worker dies on the signal with no
                   Python-level cleanup (subprocess runs only)
``torn``           truncate a byte payload (a write torn by a crash)
``garbage``        overwrite the tail of a byte payload with random
                   bytes (a corrupted sector / hand-edited file)
``corrupt-labels`` perturb a solver's result labels (a wrong answer the
                   recovery machinery must catch, never report)
=================  ====================================================

The plan can also be installed from the environment
(:func:`install_from_env`, variable ``REPRO_FAULT_PLAN`` holding inline
JSON or a path), which is how the crash harness arms child processes;
``REPRO_FAULT_STATS`` names a JSONL file injection events are appended
to so the harness can build a scorecard across kills.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any

from ..errors import DeadlineExceeded, FaultPlanError
from ..telemetry import REGISTRY, spans as telemetry
from . import hooks
from .sites import FAULT_KINDS, FILTER_KINDS, VISIT_KINDS

PLAN_FORMAT = "repro-fault-plan"
PLAN_VERSION = 1

#: Exit code of a ``kill`` fault -- distinguishable from ordinary
#: failures (1) and signal deaths (> 128) in the restart harness.
KILL_EXIT_CODE = 86

ENV_PLAN = "REPRO_FAULT_PLAN"
ENV_STATS = "REPRO_FAULT_STATS"

#: Seed stride between the fault plans derived for parallel suite
#: workers (any odd prime far from :data:`repro.runtime.suite`'s reseed
#: stride works; it only needs to decorrelate the firing streams).
SHARD_SEED_STRIDE = 7919


class InjectedTransientError(RuntimeError):
    """An injected stochastic/transient failure (retryable)."""


class InjectedMemoryError(MemoryError):
    """An injected allocation failure (deterministic, degrades)."""


class InjectedIOError(OSError):
    """An injected I/O failure (e.g. write hitting a full disk)."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    Attributes
    ----------
    site:
        Injection-site name or ``fnmatch`` glob (``"solve.*"``).
    kind:
        One of the kinds above.
    trigger:
        1-based call threshold: the fault becomes eligible on the Nth
        visit of a matching site (1 = immediately).
    arms:
        How many times the fault may fire before disarming
        (``-1`` = unlimited).
    probability:
        Per-eligible-visit firing probability, drawn from the plan's
        seeded RNG (1.0 = always fire once eligible).
    """

    site: str
    kind: str
    trigger: int = 1
    arms: int = 1
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(f"unknown fault kind {self.kind!r}")
        if self.trigger < 1:
            raise FaultPlanError("trigger is 1-based and must be >= 1")
        if self.arms == 0 or self.arms < -1:
            raise FaultPlanError("arms must be positive or -1 (unlimited)")
        if not 0.0 < self.probability <= 1.0:
            raise FaultPlanError("probability must be in (0, 1]")

    def to_dict(self) -> dict[str, Any]:
        return {"site": self.site, "kind": self.kind,
                "trigger": self.trigger, "arms": self.arms,
                "probability": self.probability}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultSpec":
        try:
            return cls(site=str(data["site"]), kind=str(data["kind"]),
                       trigger=int(data.get("trigger", 1)),
                       arms=int(data.get("arms", 1)),
                       probability=float(data.get("probability", 1.0)))
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultPlanError(f"malformed fault spec {data!r}: {exc}") \
                from exc


@dataclass
class FaultPlan:
    """A seedable set of faults to inject."""

    seed: int = 0
    faults: list[FaultSpec] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {"format": PLAN_FORMAT, "version": PLAN_VERSION,
                "seed": self.seed,
                "faults": [spec.to_dict() for spec in self.faults]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict) or data.get("format") != PLAN_FORMAT:
            raise FaultPlanError("not a fault plan (missing format tag)")
        if data.get("version") != PLAN_VERSION:
            raise FaultPlanError(
                f"fault plan version {data.get('version')!r} unsupported")
        return cls(seed=int(data.get("seed", 0)),
                   faults=[FaultSpec.from_dict(f)
                           for f in data.get("faults", [])])

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") \
                from exc
        return cls.from_dict(data)


def derive_job_plan(plan: FaultPlan, job_name: str,
                    attempt: int) -> FaultPlan:
    """The plan a sandboxed worker subprocess runs under.

    Every sandbox child starts with fresh injector state, so a plan
    installed verbatim from the environment would replay the *same*
    first probability draw in every child -- a probabilistic worker
    fault would then fire for either every job attempt or none,
    livelocking the worker kill-loop.  Mixing a CRC of the job identity
    and the attempt number into the seed decorrelates the draws while
    keeping the whole fault sequence a pure function of
    ``(base seed, job name, attempt)`` -- chaos failures stay
    replayable.
    """
    import zlib

    tag = zlib.crc32(f"{job_name}#{attempt}".encode("utf-8"))
    return FaultPlan(seed=plan.seed ^ tag, faults=list(plan.faults))


def derive_shard_plan(plan: FaultPlan, shard_index: int) -> FaultPlan:
    """The plan a parallel suite worker runs under: same fault specs,
    shard-decorrelated seed.

    Worker ``shard_index`` gets ``seed + SHARD_SEED_STRIDE * (index+1)``
    -- never the parent's own seed, so a probabilistic fault cannot fire
    in lockstep with the parent's injector, while the whole fault
    sequence of every process stays a pure function of the base seed
    and the shard index (chaos failures remain replayable).
    """
    return FaultPlan(
        seed=plan.seed + SHARD_SEED_STRIDE * (shard_index + 1),
        faults=list(plan.faults))


@dataclass
class InjectionEvent:
    """One fault that actually fired."""

    site: str
    kind: str
    call: int  # which matching visit fired it (1-based)
    context: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        context = {key: value for key, value in self.context.items()
                   if isinstance(value, (str, int, float, bool))
                   or value is None}
        return {"site": self.site, "kind": self.kind, "call": self.call,
                "context": context}


class FaultInjector:
    """Executes a :class:`FaultPlan` deterministically.

    Per spec the injector tracks how many matching visits happened and
    how many times the fault fired; firing decisions for
    ``probability < 1`` come from one ``random.Random(plan.seed)``
    stream, so the full fault sequence is a pure function of the plan.
    """

    def __init__(self, plan: FaultPlan,
                 stats_path: str | None = None) -> None:
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.calls = [0] * len(plan.faults)
        self.fired = [0] * len(plan.faults)
        self.events: list[InjectionEvent] = []
        self.stats_path = stats_path

    # ------------------------------------------------------------------
    # Firing machinery
    # ------------------------------------------------------------------
    def _eligible(self, index: int, spec: FaultSpec, site: str) -> bool:
        if not fnmatchcase(site, spec.site) and site != spec.site:
            return False
        self.calls[index] += 1
        if spec.arms != -1 and self.fired[index] >= spec.arms:
            return False
        if self.calls[index] < spec.trigger:
            return False
        if spec.probability < 1.0 and \
                self.rng.random() >= spec.probability:
            return False
        return True

    def _record(self, index: int, spec: FaultSpec, site: str,
                context: dict[str, Any]) -> InjectionEvent:
        self.fired[index] += 1
        event = InjectionEvent(site=site, kind=spec.kind,
                               call=self.calls[index], context=context)
        # Telemetry crossover: the firing becomes a trace event, and the
        # id of the span it fired inside lands in the event context --
        # scorecards serialize scalar context values, so a chaos report
        # can cite exactly which traced region each fault hit.
        span_id = telemetry.current_span_id()
        if span_id is not None:
            event.context.setdefault("span_id", span_id)
        telemetry.event("fault.fired", site=site, kind=spec.kind,
                        call=event.call)
        REGISTRY.counter("faultplane.fired",
                         help="Fault-plane injections that fired").inc()
        self.events.append(event)
        return event

    def visit(self, site: str, context: dict[str, Any]) -> None:
        """Hook target for :func:`repro.faultplane.hooks.fault_point`."""
        for index, spec in enumerate(self.plan.faults):
            if spec.kind not in VISIT_KINDS:
                continue
            if not self._eligible(index, spec, site):
                continue
            event = self._record(index, spec, site, context)
            self._raise(spec, site, event)

    def filter_bytes(self, site: str, data: bytes) -> bytes:
        """Hook target for ``filter_bytes`` (torn/garbage corruption)."""
        for index, spec in enumerate(self.plan.faults):
            if spec.kind not in ("torn", "garbage"):
                continue
            if not self._eligible(index, spec, site):
                continue
            self._record(index, spec, site, {"bytes": len(data)})
            if not data:
                continue
            # Keep a strict prefix so the tear is always detectable.
            keep = self.rng.randrange(0, len(data))
            if spec.kind == "torn":
                data = data[:keep]
            else:
                tail = bytes(self.rng.randrange(256)
                             for _ in range(len(data) - keep))
                data = data[:keep] + tail
        return data

    def filter_labels(self, site: str, labels):
        """Hook target for ``filter_labels`` (result corruption).

        Perturbs one non-host label of a retiming vector by a large
        decrease -- a structurally wrong answer that the post-retime
        guards / differential checks must catch (never report).
        """
        for index, spec in enumerate(self.plan.faults):
            if spec.kind != "corrupt-labels":
                continue
            if not self._eligible(index, spec, site):
                continue
            self._record(index, spec, site,
                         {"n_labels": int(len(labels))})
            if len(labels) > 1:
                labels = labels.copy()
                victim = self.rng.randrange(1, len(labels))
                labels[victim] -= 3
        return labels

    def _raise(self, spec: FaultSpec, site: str,
               event: InjectionEvent) -> None:
        # The message deliberately names only the fault, not the call
        # count or plan seed: it ends up in FailureRecords and hence in
        # manifests, where it must be identical however the visits were
        # distributed (serial, sharded, resumed).  The injector-local
        # provenance (call index, seed) lives in the event log.
        message = f"injected {spec.kind} fault at site {site!r}"
        if spec.kind == "transient":
            raise InjectedTransientError(message)
        if spec.kind == "deadline":
            raise DeadlineExceeded(message, stage=site, elapsed=0.0)
        if spec.kind == "memory":
            raise InjectedMemoryError(message)
        if spec.kind == "oserror":
            raise InjectedIOError(message)
        if spec.kind == "kill":
            # Flush the event so the restart harness can count kills,
            # then die without cleanup -- SIGKILL/power-loss semantics.
            self.flush_stats()
            os._exit(KILL_EXIT_CODE)
        if spec.kind == "hang":
            # A call that never returns.  Only meaningful inside a
            # sandboxed worker whose watchdog escalates SIGTERM ->
            # SIGKILL; the sleep loop keeps the GIL released so the
            # process stays signalable.
            self.flush_stats()
            import time as _time

            while True:  # pragma: no cover - killed by the watchdog
                _time.sleep(3600.0)
        if spec.kind == "oom":
            # Real allocation pressure, not a synthetic raise: grow
            # until the worker rlimit (or Python itself) refuses, then
            # surface the genuine MemoryError.  64 MiB chunks reach a
            # few-hundred-MiB rlimit in a handful of iterations.
            self.flush_stats()
            hog: list[bytearray] = []
            while True:
                hog.append(bytearray(64 * 1024 * 1024))
        if spec.kind == "segfault":
            # Die on the signal itself -- no Python cleanup, exactly
            # like a crashing native kernel.
            self.flush_stats()
            import signal as _signal

            _signal.raise_signal(_signal.SIGSEGV)
        raise FaultPlanError(f"unrealizable fault kind {spec.kind!r}")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Summary of what fired: per-site/kind counts plus the events."""
        counts: dict[str, int] = {}
        for event in self.events:
            key = f"{event.site}/{event.kind}"
            counts[key] = counts.get(key, 0) + 1
        return {"seed": self.plan.seed,
                "injected": sum(counts.values()),
                "by_site": dict(sorted(counts.items())),
                "events": [event.to_dict() for event in self.events]}

    def flush_stats(self) -> None:
        """Append this process's events to ``stats_path`` (JSONL)."""
        if self.stats_path is None or not self.events:
            return
        try:
            with open(self.stats_path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(self.stats()) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:
            pass  # stats are advisory; never break the run over them


def load_plan_from_env(environ: Any = None) -> FaultPlan | None:
    """Read and validate the ``REPRO_FAULT_PLAN`` plan, or ``None``.

    The variable holds either inline plan JSON (starts with ``{``) or a
    path to a plan file.  Callers that need to transform the plan
    before installing it (the sandbox worker decorrelates the seed per
    job attempt) use this instead of :func:`install_from_env`.
    """
    if environ is None:
        environ = os.environ
    raw = environ.get(ENV_PLAN)
    if not raw:
        return None
    if raw.lstrip().startswith("{"):
        plan = FaultPlan.from_json(raw)
    else:
        try:
            with open(raw, "r", encoding="utf-8") as handle:
                plan = FaultPlan.from_json(handle.read())
        except OSError as exc:
            raise FaultPlanError(
                f"cannot read fault plan {raw!r}: {exc}") from exc
    from .sites import check_plan

    check_plan(plan)
    return plan


def install_from_env(environ: Any = None):
    """Install a :class:`FaultInjector` from ``REPRO_FAULT_PLAN``.

    Returns the installed injector, or ``None`` when the variable is
    unset.  ``REPRO_FAULT_STATS``, when set, names the JSONL file
    injection events are appended to.
    """
    if environ is None:
        environ = os.environ
    plan = load_plan_from_env(environ)
    if plan is None:
        return None
    injector = FaultInjector(plan, stats_path=environ.get(ENV_STATS))
    hooks.install(injector)
    return injector

"""The chaos harness: run the Table I suite under a fault plan and prove
the recovery runtime recovers.

Three layers:

* :func:`run_chaos` -- in-process chaos: install a
  :class:`~repro.faultplane.plan.FaultInjector`, run
  :func:`repro.runtime.suite.run_suite`, then run the *same* configuration
  clean and differentially verify that recovery never produced a wrong
  answer (see :func:`verify_run` / :func:`oracle_check`).
* :func:`restart_until_complete` -- the crash-consistency harness: run the
  ``table1`` CLI in a child process armed (via ``REPRO_FAULT_PLAN``) with
  ``kill`` faults, restart with ``--resume`` until it completes, and
  record for every attempt which circuits were computed vs resumed and
  whether the on-disk manifest stayed loadable (it must: the atomic
  fsync+rename protocol guarantees a never-torn checkpoint).
* :class:`ChaosScorecard` -- the recovery scorecard: faults injected /
  retried / degraded / quarantined / gave-up / wrong-answer counts, which
  the ``repro-ser chaos`` subcommand prints and CI archives.

"Recovered" must never mean "silently wrong": a chaos run *fails* (the
scorecard reports ``wrong_answers > 0``) if any row with status ``ok``
differs from the clean reference, any ``identity``-rung outcome differs
from the original circuit's row, any reported retiming violates the
Problem 1 constraint system it claims to satisfy, or (small circuits)
any reported objective beats the brute-force oracle.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import ExecutionError, ManifestError
from . import hooks
from .plan import (ENV_PLAN, ENV_STATS, KILL_EXIT_CODE, FaultInjector,
                   FaultPlan, FaultSpec)
from .sites import SITES, check_plan, match_sites

#: Fault kinds a recovery run must survive without a wrong answer (the
#: ``corrupt-labels`` kind is the negative control: it manufactures wrong
#: answers to prove the detection machinery catches them).
RECOVERABLE_KINDS = ("transient", "deadline", "memory", "oserror",
                    "torn", "garbage")

#: Wall-clock row fields -- the only nondeterministic report columns.
TIME_FIELDS = ("ref_time", "new_time")

_TIME_RE = re.compile(r"\d+\.\d\d(?=\s|$)")


def build_plan(seed: int = 0, sites: list[str] | None = None,
               kinds: list[str] | None = None, trigger: int = 1,
               arms: int = 1, probability: float = 1.0,
               kill_prob: float = 0.0) -> FaultPlan:
    """Assemble a plan: one spec per (site, representative kind).

    ``sites`` are catalog names or globs (default: every site);
    ``kinds`` restricts the fault kinds used (default: every
    recoverable kind each site lists).  ``kill_prob > 0`` additionally
    arms every ``kill``-capable site with that firing probability
    (subprocess harness mode).
    """
    wanted = sorted({name for pattern in (sites or ["*"])
                     for name in match_sites(pattern)})
    specs: list[FaultSpec] = []
    for name in wanted:
        for kind in SITES[name].kinds:
            if kind == "kill":
                continue
            if kinds is not None and kind not in kinds:
                continue
            if kinds is None and kind not in RECOVERABLE_KINDS:
                continue
            specs.append(FaultSpec(site=name, kind=kind, trigger=trigger,
                                   arms=arms, probability=probability))
    if kill_prob > 0.0:
        for name in wanted:
            if "kill" in SITES[name].kinds:
                specs.append(FaultSpec(site=name, kind="kill", trigger=1,
                                       arms=-1, probability=kill_prob))
    plan = FaultPlan(seed=seed, faults=specs)
    check_plan(plan)
    return plan


# ----------------------------------------------------------------------
# Differential verification
# ----------------------------------------------------------------------
def strip_times(row: dict[str, Any]) -> dict[str, Any]:
    """A row minus its wall-clock columns (the only nondeterminism)."""
    return {key: value for key, value in row.items()
            if key not in TIME_FIELDS}


def mask_report_times(report: str) -> str:
    """Blank the ``t_ref``/``t_new`` columns of a formatted report."""
    return _TIME_RE.sub("T", report)


def labels_from_status(status: str,
                       algorithms: tuple[str, ...]) -> dict[str, str]:
    """Final ladder rung per algorithm, parsed from a row status."""
    labels = {algorithm: algorithm for algorithm in algorithms}
    for part in status.split(";"):
        if "=" in part:
            key, value = part.split("=", 1)
            if key in labels:
                labels[key] = value
    return labels


def verify_run(run, reference, algorithms: tuple[str, ...]) -> list[str]:
    """Row-level wrongness checks for one chaos-run circuit.

    * status ``ok`` claims full recovery: the row must equal the clean
      reference row (wall-clock columns excluded);
    * an ``identity`` final rung claims "original circuit reported
      unchanged": its columns must equal the original's.

    ``failed:*`` rows are clearly-labeled losses, not wrong answers.
    """
    issues: list[str] = []
    if run.status.startswith("failed:"):
        return issues
    if run.status == "ok":
        if strip_times(run.row) != strip_times(reference.row):
            issues.append(
                f"{run.name}: status 'ok' but the row differs from the "
                f"clean reference run")
        return issues
    labels = labels_from_status(run.status, algorithms)
    for algorithm, alias in (("minobs", "ref"), ("minobswin", "new")):
        if algorithm not in algorithms:
            continue
        if labels[algorithm] != "identity":
            continue
        if run.row.get(f"{alias}_ser") != run.row.get("ser") or \
                run.row.get(f"{alias}_ff") != run.row.get("FF"):
            issues.append(
                f"{run.name}/{algorithm}: identity rung must reproduce "
                f"the original circuit's columns")
    return issues


def oracle_check(run, circuit, n_patterns: int,
                 algorithms: tuple[str, ...],
                 max_points: int = 300_000,
                 ) -> tuple[int, int, list[str]]:
    """Cross-check reported retimings against the small-circuit oracle.

    For every non-identity outcome: the reported labels must satisfy the
    constraint system they claim (P0 ∧ P1′, plus P2′ for minobswin
    rungs), and on circuits small enough for
    :func:`repro.core.oracle.brute_force_optimum` the reported objective
    must not *beat* the exhaustive optimum over the decrease-reachable
    box (an impossibly good answer is a corrupted one).

    Returns ``(checked, skipped, issues)``; circuits too large for the
    brute-force oracle count as skipped, never as wrong.
    """
    from ..core.constraints import check_constraints
    from ..core.oracle import brute_force_optimum
    from ..graph.retiming_graph import RetimingGraph
    from ..pipeline import build_problem

    if run.result is None:
        return 0, 1, []
    checked = skipped = 0
    issues: list[str] = []
    graph = RetimingGraph.from_circuit(circuit)
    init = run.result.init
    problem = build_problem(graph, init, run.result.obs, n_patterns,
                            circuit.library.setup_time,
                            circuit.library.hold_time)
    status = "" if run.status == "ok" else run.status
    labels = labels_from_status(status, algorithms)
    for algorithm, outcome in run.result.outcomes.items():
        label = labels.get(algorithm, algorithm)
        if label == "identity":
            continue
        r = outcome.result.r
        skip_p2 = label.startswith("minobs") \
            and not label.startswith("minobswin")
        violation = check_constraints(problem, r, skip_p2=skip_p2)
        if violation is not None:
            issues.append(
                f"{run.name}/{algorithm}: reported retiming ({label}) "
                f"violates {violation.kind}: {violation.note}")
            checked += 1
            continue
        radius = int(max(2, (init.r0 - r).max()))
        try:
            _, optimum = brute_force_optimum(
                problem, base=init.r0, radius=radius,
                decreases_only=True, skip_p2=skip_p2,
                max_points=max_points)
        except MemoryError:
            skipped += 1
            continue
        checked += 1
        objective = int(problem.objective(r))
        if objective > optimum:
            issues.append(
                f"{run.name}/{algorithm}: reported objective "
                f"{objective} beats the brute-force optimum {optimum} "
                f"-- the result is corrupted")
    return checked, skipped, issues


# ----------------------------------------------------------------------
# Scorecard
# ----------------------------------------------------------------------
@dataclass
class ChaosScorecard:
    """The recovery scorecard of one chaos run."""

    seed: int
    injected: int = 0
    injected_by_site: dict[str, int] = field(default_factory=dict)
    retried: int = 0
    degraded: int = 0
    gave_up: int = 0
    partial_results: int = 0
    quarantined: int = 0
    rows_total: int = 0
    rows_ok: int = 0
    rows_degraded: int = 0
    rows_failed: int = 0
    rows_resumed: int = 0
    kills: int = 0
    restarts: int = 0
    oracle_checked: int = 0
    oracle_skipped: int = 0
    wrong_answers: int = 0
    wrong_details: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": "repro-chaos-scorecard", "version": 1,
            "seed": self.seed, "injected": self.injected,
            "injected_by_site": dict(sorted(
                self.injected_by_site.items())),
            "retried": self.retried, "degraded": self.degraded,
            "gave_up": self.gave_up,
            "partial_results": self.partial_results,
            "quarantined": self.quarantined,
            "rows": {"total": self.rows_total, "ok": self.rows_ok,
                     "degraded": self.rows_degraded,
                     "failed": self.rows_failed,
                     "resumed": self.rows_resumed},
            "kills": self.kills, "restarts": self.restarts,
            "oracle": {"checked": self.oracle_checked,
                       "skipped": self.oracle_skipped},
            "wrong_answers": self.wrong_answers,
            "wrong_details": list(self.wrong_details),
        }

    def tally_failures(self, failures) -> None:
        for record in failures:
            if record.action == "retry":
                self.retried += 1
            elif record.action == "degrade":
                self.degraded += 1
            elif record.action == "gave-up":
                self.gave_up += 1
            elif record.action == "partial-result":
                self.partial_results += 1
            if record.error == "VerificationError":
                self.quarantined += 1

    def tally_rows(self, runs) -> None:
        self.rows_total += len(runs)
        for run in runs:
            if run.status == "ok":
                self.rows_ok += 1
            elif run.status.startswith("failed:"):
                self.rows_failed += 1
            else:
                self.rows_degraded += 1
            if getattr(run, "resumed", False):
                self.rows_resumed += 1

    def tally_stats(self, stats: dict[str, Any]) -> None:
        self.injected += int(stats.get("injected", 0))
        for key, count in stats.get("by_site", {}).items():
            self.injected_by_site[key] = \
                self.injected_by_site.get(key, 0) + int(count)
            if key.endswith("/kill"):
                self.kills += int(count)


def format_scorecard(card: ChaosScorecard) -> str:
    lines = [f"chaos scorecard (fault seed {card.seed})"]
    top = sorted(card.injected_by_site.items(),
                 key=lambda item: (-item[1], item[0]))
    where = ", ".join(f"{site} x{count}" for site, count in top[:6])
    lines.append(f"  faults injected : {card.injected}"
                 + (f"  ({where})" if where else ""))
    lines.append(f"  retried         : {card.retried}")
    lines.append(f"  degraded        : {card.degraded}")
    lines.append(f"  quarantined     : {card.quarantined}")
    lines.append(f"  gave up         : {card.gave_up}")
    lines.append(f"  partial results : {card.partial_results}")
    lines.append(f"  rows            : {card.rows_total} total, "
                 f"{card.rows_ok} ok, {card.rows_degraded} degraded, "
                 f"{card.rows_failed} failed, "
                 f"{card.rows_resumed} resumed")
    if card.kills or card.restarts:
        lines.append(f"  kills/restarts  : {card.kills} kills, "
                     f"{card.restarts} restarts")
    lines.append(f"  oracle          : {card.oracle_checked} checked, "
                 f"{card.oracle_skipped} skipped")
    lines.append(f"  wrong answers   : {card.wrong_answers}")
    for detail in card.wrong_details:
        lines.append(f"    !! {detail}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# In-process chaos
# ----------------------------------------------------------------------
def run_chaos(config, plan: FaultPlan,
              circuit_factory: Callable[[str], Any] | None = None,
              manifest_path: str | None = None, verify: bool = True,
              oracle: bool = False,
              progress: Callable[[str], None] | None = None):
    """Run a suite under ``plan``, verify recovery, build the scorecard.

    Returns ``(SuiteResult, ChaosScorecard)``.  With ``verify`` the same
    configuration is re-run clean (no faults) as the differential
    reference; with ``oracle`` every outcome is additionally
    cross-checked against the small-circuit brute-force oracle
    (``circuit_factory`` circuits must be oracle-scale).
    """
    from ..runtime.suite import run_suite

    check_plan(plan)
    injector = FaultInjector(plan)
    with hooks.installed(injector):
        suite = run_suite(config, manifest_path=manifest_path,
                          progress=progress,
                          circuit_factory=circuit_factory)

    card = ChaosScorecard(seed=plan.seed)
    card.tally_stats(injector.stats())
    for stats in suite.fault_stats:
        # workers > 1: each shard worker ran its own derived injector.
        card.tally_stats(stats)
    card.tally_rows(suite.runs)
    card.tally_failures(suite.failures)

    if verify:
        # The clean reference must not trace: a second pass appending to
        # the same trace file would duplicate every span of the chaos
        # run it is meant to verify.
        from dataclasses import replace

        reference = run_suite(replace(config, trace_path=None),
                              circuit_factory=circuit_factory)
        for run, ref in zip(suite.runs, reference.runs):
            issues = verify_run(run, ref, config.algorithms)
            card.wrong_details.extend(issues)
    if oracle:
        if circuit_factory is None:
            from ..circuits.suites import table1_circuit

            def circuit_factory(name, _config=config):
                return table1_circuit(name, scale=_config.scale,
                                      seed=_config.seed)
        for run in suite.runs:
            if run.status.startswith("failed:"):
                continue
            checked, skipped, issues = oracle_check(
                run, circuit_factory(run.name), config.n_patterns,
                config.algorithms)
            card.oracle_checked += checked
            card.oracle_skipped += skipped
            card.wrong_details.extend(issues)
    card.wrong_answers = len(card.wrong_details)
    return suite, card


# ----------------------------------------------------------------------
# Crash-consistency harness (subprocess kill loop)
# ----------------------------------------------------------------------
@dataclass
class HarnessAttempt:
    """One child-process run of the kill loop."""

    exit_code: int
    computed: list[str]
    resumed: list[str]
    manifest_loadable: bool
    completed_after: set[str]
    double_ran: list[str]
    stdout: str = ""
    stderr: str = ""


@dataclass
class HarnessResult:
    """Everything the kill loop observed."""

    attempts: list[HarnessAttempt]
    stdout: str  # final (successful) report
    stats: list[dict[str, Any]]

    @property
    def kills(self) -> int:
        return sum(1 for a in self.attempts
                   if a.exit_code == KILL_EXIT_CODE)

    @property
    def restarts(self) -> int:
        return max(0, len(self.attempts) - 1)

    @property
    def double_runs(self) -> list[str]:
        return [name for a in self.attempts for name in a.double_ran]

    @property
    def torn_manifests(self) -> int:
        return sum(1 for a in self.attempts if not a.manifest_loadable)


#: A freshly computed circuit's ``--verbose`` progress line
#: (``"<name>: <status> (1.23s)"``).
_COMPUTED_RE = re.compile(r"^(?P<name>\S+): \S.*\(\d+\.\d+s\)$")
#: A checkpoint-skipped circuit's progress line.
_RESUMED_RE = re.compile(r"^(?P<name>\S+): resumed from manifest")


def table1_argv(circuits: list[str], manifest_path: str, *,
                scale: float, seed: int = 0, frames: int = 15,
                patterns: int = 256, workers: int = 1,
                core: str = "auto",
                extra: list[str] | None = None) -> list[str]:
    """CLI argv for one resumable ``table1`` child run."""
    argv = ["table1", *circuits, "--scale", repr(scale),
            "--seed", str(seed), "--frames", str(frames),
            "--patterns", str(patterns), "--resume", manifest_path,
            "--verbose"]
    if workers > 1:
        argv.extend(["--workers", str(workers)])
    if core != "auto":
        argv.extend(["--core", core])
    if extra:
        argv.extend(extra)
    return argv


def restart_until_complete(argv: list[str], plan: FaultPlan,
                           manifest_path: str, workdir: str,
                           max_restarts: int = 40,
                           reseed_per_attempt: bool = True,
                           progress: Callable[[str], None] | None = None,
                           ) -> HarnessResult:
    """Run ``repro.cli`` with ``argv`` in a kill loop until it exits 0.

    Each attempt arms the child (via ``REPRO_FAULT_PLAN``) with ``plan``;
    with ``reseed_per_attempt`` attempt *i* uses ``plan.seed + i`` so
    probabilistic kills cannot pin the run in a livelock while staying
    fully reproducible from the base seed.  After every attempt the
    on-disk manifest is re-loaded (it must never be torn) and the
    progress log is diffed against the previously completed set (a
    checkpointed circuit must never be computed again).
    """
    os.makedirs(workdir, exist_ok=True)
    stats_path = os.path.join(workdir, "fault-stats.jsonl")
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    attempts: list[HarnessAttempt] = []
    completed: set[str] = set()
    final_stdout = ""
    fruitless = 0
    for attempt_index in range(max_restarts + 1):
        attempt_plan = FaultPlan(
            seed=plan.seed + (attempt_index if reseed_per_attempt else 0),
            faults=list(plan.faults))
        env = dict(os.environ)
        env[ENV_PLAN] = attempt_plan.to_json()
        env[ENV_STATS] = stats_path
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", *argv],
            capture_output=True, text=True, env=env, cwd=workdir)
        computed: list[str] = []
        resumed: list[str] = []
        for line in proc.stderr.splitlines():
            line = line.strip()
            if line.startswith("warning:"):
                continue
            match = _RESUMED_RE.match(line)
            if match is not None:
                resumed.append(match.group("name"))
                continue
            match = _COMPUTED_RE.match(line)
            if match is not None:
                computed.append(match.group("name"))
        loadable = True
        completed_after: set[str] = set(completed)
        if os.path.exists(manifest_path):
            from ..runtime.manifest import RunManifest

            try:
                manifest = RunManifest.load(manifest_path)
                completed_after = set(manifest.completed)
            except ManifestError:
                loadable = False
        double_ran = sorted(set(computed) & completed)
        attempts.append(HarnessAttempt(
            exit_code=proc.returncode, computed=computed, resumed=resumed,
            manifest_loadable=loadable, completed_after=completed_after,
            double_ran=double_ran, stdout=proc.stdout,
            stderr=proc.stderr))
        completed = completed_after
        if progress is not None:
            progress(f"attempt {attempt_index}: exit {proc.returncode}, "
                     f"computed {len(computed)}, resumed {len(resumed)}, "
                     f"{len(completed)} checkpointed")
        if proc.returncode == 0:
            final_stdout = proc.stdout
            break
        # Fail fast on deterministic livelock: an ordinary (non-kill)
        # failure that made no checkpoint progress will repeat forever.
        progressed = len(completed) > len(
            attempts[-2].completed_after) if len(attempts) > 1 else \
            bool(completed)
        if proc.returncode != KILL_EXIT_CODE and not progressed:
            fruitless += 1
            if fruitless >= 3:
                tail = "\n".join(proc.stderr.splitlines()[-5:])
                raise ExecutionError(
                    f"chaos child failed {fruitless} consecutive times "
                    f"(exit {proc.returncode}) without progress; the "
                    f"fault plan is not survivable. Last stderr:\n{tail}")
        else:
            fruitless = 0
    else:
        raise ExecutionError(
            f"chaos kill loop did not complete within {max_restarts} "
            f"restarts (fault seed {plan.seed}; lower --kill-prob or "
            f"raise --max-restarts)")
    stats: list[dict[str, Any]] = []
    if os.path.exists(stats_path):
        with open(stats_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    try:
                        stats.append(json.loads(line))
                    except json.JSONDecodeError:
                        pass  # a kill can tear the advisory stats line
    return HarnessResult(attempts=attempts, stdout=final_stdout,
                         stats=stats)


def run_kill_chaos(config, plan: FaultPlan, workdir: str,
                   max_restarts: int = 40, verify: bool = True,
                   progress: Callable[[str], None] | None = None):
    """Full kill-loop chaos on a suite config; returns
    ``(HarnessResult, ChaosScorecard)``.

    Runs the resumable ``table1`` CLI under ``plan`` in the restart
    harness, then builds the scorecard from the stats log, the final
    manifest and (with ``verify``) a clean in-process reference run.
    Torn manifests and double-run circuits are wrong answers: they mean
    the checkpoint protocol lied.
    """
    from ..runtime.manifest import RunManifest
    from ..runtime.suite import CircuitRun, run_suite

    manifest_path = os.path.join(workdir, "chaos-manifest.json")
    argv = table1_argv(list(config.circuits), manifest_path,
                       scale=config.scale, seed=config.seed,
                       frames=config.n_frames, patterns=config.n_patterns,
                       workers=config.workers, core=config.core)
    harness = restart_until_complete(argv, plan, manifest_path, workdir,
                                     max_restarts=max_restarts,
                                     progress=progress)
    card = ChaosScorecard(seed=plan.seed)
    for entry in harness.stats:
        card.tally_stats(entry)
    card.kills = max(card.kills, harness.kills)
    card.restarts = harness.restarts

    manifest = RunManifest.load(manifest_path)
    runs = [CircuitRun.from_record(manifest.completed[name])
            for name in config.circuits if name in manifest.completed]
    for run in runs:
        run.resumed = False  # "resumed" here means skipped mid-harness
    card.tally_rows(runs)
    card.rows_resumed = sum(len(a.resumed) for a in harness.attempts)
    for run in runs:
        card.tally_failures(run.failures)

    for name in harness.double_runs:
        card.wrong_details.append(
            f"{name}: computed again after being checkpointed")
    if harness.torn_manifests:
        card.wrong_details.append(
            f"manifest was unreadable after {harness.torn_manifests} "
            f"attempt(s) -- the checkpoint tore")
    if len(runs) != len(config.circuits):
        missing = [name for name in config.circuits
                   if name not in manifest.completed]
        card.wrong_details.append(
            f"final manifest is missing circuits: {', '.join(missing)}")
    if verify:
        from dataclasses import replace

        # Clean reference: no faults and no tracing (see run_chaos).
        reference = run_suite(replace(config, trace_path=None))
        by_name = {run.name: run for run in reference.runs}
        for run in runs:
            card.wrong_details.extend(
                verify_run(run, by_name[run.name], config.algorithms))
    card.wrong_answers = len(card.wrong_details)
    return harness, card

"""The injection-site catalog: every named fault site in the codebase.

A *site* is a stable name for one ``fault_point``/``filter_*`` call in an
instrumented module.  The catalog is the single source of truth for what
can be injected where -- plans are validated against it so a typo in a
``--sites`` argument fails loudly instead of silently never firing.

The catalog mirrors the failure taxonomy of ``docs/algorithm.md``
(Sec. 7): each site lists the fault kinds that are *representative* of
real failures at that layer.

+---------------------------+---------+----------------------------------+
| site                      | layer   | kinds                            |
+===========================+=========+==================================+
| ``solve.minobswin``       | core    | solver entry (Algorithm 1)       |
| ``solve.minobs``          | core    | baseline-solver entry            |
| ``solve.pass``            | core    | each fresh-forest pass           |
| ``solve.result.labels``   | core    | label corruption on the result   |
| ``sim.observability``     | sim     | signature-simulation entry       |
| ``ser.analyze``           | ser     | SER analysis entry               |
| ``parse.bench``           | netlist | ``.bench`` parser entry          |
| ``parse.blif``            | netlist | BLIF parser entry                |
| ``manifest.save.enter``   | runtime | checkpoint write begins          |
| ``manifest.save.bytes``   | runtime | serialized bytes (torn writes)   |
| ``manifest.save.midwrite``| runtime | half the temp file written       |
| ``manifest.save.rename``  | runtime | temp synced, not yet renamed     |
| ``manifest.save.done``    | runtime | checkpoint durable               |
| ``manifest.load.enter``   | runtime | checkpoint read begins           |
| ``suite.circuit.start``   | runtime | next suite circuit begins        |
| ``suite.checkpoint``      | runtime | circuit checkpointed             |
| ``cache.load.enter``      | cache   | cache-entry read begins          |
| ``cache.store.bytes``     | cache   | serialized entry (torn writes)   |
| ``cache.store.write``     | cache   | cache-entry write begins         |
| ``service.accept``        | service | job admission (POST /jobs)       |
| ``service.lease``         | service | a worker is claiming a job       |
| ``service.persist``       | service | a job record write begins        |
| ``service.worker.execute``| service | sandboxed worker starts its job  |
| ``service.worker.job.*``  | service | name-keyed family (poison jobs)  |
+---------------------------+---------+----------------------------------+

``service.worker.job.*`` is a *family* entry: the sandboxed worker
visits the concrete site ``service.worker.job.<job name>``, and a plan
spec naming one concrete member validates against the family -- which is
how the worker kill-loop arms a single poison job without touching the
rest of the queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase

from ..errors import FaultPlanError

#: Fault kinds realized by :meth:`FaultInjector.visit` (they raise or kill).
#: ``hang``/``oom``/``segfault`` model worker-process pathologies -- a
#: native call that never returns, runaway allocation that slams into an
#: rlimit, a hard crash inside a numeric kernel -- and are only sensible
#: inside a sandboxed worker subprocess under a watchdog (see
#: :mod:`repro.service.sandbox`).
VISIT_KINDS = ("transient", "deadline", "memory", "oserror", "kill",
               "hang", "oom", "segfault")
#: Fault kinds realized by the ``filter_*`` hooks (they corrupt data).
FILTER_KINDS = ("torn", "garbage", "corrupt-labels")
#: Every known fault kind.
FAULT_KINDS = VISIT_KINDS + FILTER_KINDS


@dataclass(frozen=True)
class Site:
    """One catalog entry."""

    name: str
    layer: str
    kinds: tuple[str, ...]
    description: str


def _site(name: str, layer: str, kinds: tuple[str, ...],
          description: str) -> tuple[str, Site]:
    return name, Site(name, layer, kinds, description)


#: The full catalog, keyed by site name.
SITES: dict[str, Site] = dict((
    _site("solve.minobswin", "core", ("transient", "deadline", "memory"),
          "entry of the MinObsWin solve (Algorithm 1)"),
    _site("solve.minobs", "core", ("transient", "deadline", "memory"),
          "entry of the Efficient MinObs baseline solve"),
    _site("solve.pass", "core", ("transient", "deadline", "memory"),
          "start of each fresh-forest solver pass (either solver)"),
    _site("solve.result.labels", "core", ("corrupt-labels",),
          "the final retiming labels a solve is about to return"),
    _site("sim.observability", "sim", ("transient", "memory"),
          "entry of the n-time-frame signature simulation"),
    _site("ser.analyze", "ser", ("transient", "memory"),
          "entry of the eq. (4) SER analysis"),
    _site("parse.bench", "netlist", ("transient", "oserror"),
          "entry of the .bench parser"),
    _site("parse.blif", "netlist", ("transient", "oserror"),
          "entry of the BLIF parser"),
    _site("manifest.save.enter", "runtime", ("oserror", "kill"),
          "a manifest checkpoint write is about to begin"),
    _site("manifest.save.bytes", "runtime", ("torn", "garbage"),
          "the serialized manifest bytes (models a torn write)"),
    _site("manifest.save.midwrite", "runtime", ("kill", "oserror"),
          "half the manifest temp file has been written"),
    _site("manifest.save.rename", "runtime", ("kill",),
          "temp file written and fsynced, atomic rename still pending"),
    _site("manifest.save.done", "runtime", ("kill",),
          "the checkpoint is durable on disk"),
    _site("manifest.load.enter", "runtime", ("oserror", "transient"),
          "a manifest is about to be read"),
    _site("suite.circuit.start", "runtime",
          ("transient", "memory", "kill"),
          "the suite runner is about to start the next circuit"),
    _site("suite.checkpoint", "runtime", ("kill",),
          "a circuit was recorded and checkpointed"),
    _site("cache.load.enter", "cache", ("oserror", "transient"),
          "an analysis-cache entry is about to be read"),
    _site("cache.store.bytes", "cache", ("torn", "garbage"),
          "the serialized analysis-cache entry bytes (torn/garbage "
          "writes)"),
    _site("cache.store.write", "cache", ("oserror",),
          "an analysis-cache entry write is about to begin"),
    # Service sites degrade to a structured 5xx (accept) or to a requeue
    # (lease/persist) -- never a lost or duplicated job; the service
    # chaos suite asserts exactly that.  ``service.persist`` lists no
    # torn/garbage kinds on purpose: job records ride the atomic
    # tempfile+fsync+rename protocol, so the realistic failures are a
    # failing write syscall or a crash, not a torn file.
    _site("service.accept", "service", ("transient", "oserror"),
          "a job submission is being admitted (POST /jobs)"),
    _site("service.lease", "service", ("transient",),
          "a worker is about to lease the next queued job"),
    _site("service.persist", "service", ("oserror", "kill"),
          "a durable job-record write is about to begin"),
    # Worker-process sites fire *inside* a sandboxed worker subprocess
    # (``--isolation process``): the pathological kinds take down only
    # that worker, the supervisor restarts it, and the crash-count
    # budget quarantines a job that keeps killing its workers.
    _site("service.worker.execute", "service",
          ("transient", "hang", "oom", "segfault", "kill"),
          "a sandboxed worker subprocess is about to execute its job"),
    _site("service.worker.job.*", "service", ("hang", "oom", "segfault"),
          "name-keyed family: the sandboxed worker visits "
          "service.worker.job.<job name>, so a plan can target one "
          "poison job while the rest of the queue stays healthy"),
))


def match_sites(pattern: str) -> list[str]:
    """Catalog sites matching a name or ``fnmatch`` glob, sorted.

    Matching is two-way so *family* entries work: a catalog name that is
    itself a glob (``service.worker.job.*``) is matched by any concrete
    member (``service.worker.job.poison``), and an ordinary glob pattern
    still matches family names textually (``service.*`` covers them).
    """
    return sorted(name for name in SITES
                  if fnmatchcase(name, pattern)
                  or fnmatchcase(pattern, name))


def sites_for_kind(kind: str) -> list[str]:
    """Catalog sites that list ``kind`` as representative, sorted."""
    return sorted(name for name, site in SITES.items()
                  if kind in site.kinds)


def check_plan(plan) -> None:
    """Validate a :class:`~repro.faultplane.plan.FaultPlan` against the
    catalog.

    Every spec must use a known fault kind and its site pattern must
    match at least one catalog site that lists that kind; raises
    :class:`~repro.errors.FaultPlanError` otherwise.  A glob may also
    cover sites that do *not* list the kind -- those simply never fire.
    """
    for spec in plan.faults:
        if spec.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {spec.kind!r} (known: "
                f"{', '.join(FAULT_KINDS)})")
        matched = match_sites(spec.site)
        if not matched:
            raise FaultPlanError(
                f"fault site pattern {spec.site!r} matches no known "
                f"injection site (see repro.faultplane.sites.SITES)")
        if not any(spec.kind in SITES[name].kinds for name in matched):
            raise FaultPlanError(
                f"fault kind {spec.kind!r} is not representative at any "
                f"site matching {spec.site!r} "
                f"(matched: {', '.join(matched)})")

"""Deterministic fault-injection plane (see ``docs/algorithm.md`` Sec. 8).

Public surface:

* :mod:`repro.faultplane.hooks` -- the no-op-by-default hot-path hooks
  (``fault_point`` / ``filter_bytes`` / ``filter_labels``) instrumented
  modules call at their named sites;
* :class:`FaultPlan` / :class:`FaultSpec` / :class:`FaultInjector` -- a
  seedable, serializable description of what to break and the engine
  that executes it deterministically;
* :data:`SITES` -- the injection-site catalog plans are validated
  against;
* :mod:`repro.faultplane.chaos` -- the chaos harness (in-process
  differential runs, the subprocess kill/restart loop, the recovery
  scorecard).
"""

from .chaos import (ChaosScorecard, HarnessAttempt, HarnessResult,
                    build_plan, format_scorecard, mask_report_times,
                    oracle_check, restart_until_complete, run_chaos,
                    run_kill_chaos, strip_times, table1_argv, verify_run)
from .hooks import (active, fault_point, filter_bytes, filter_labels,
                    install, installed, uninstall)
from .plan import (ENV_PLAN, ENV_STATS, KILL_EXIT_CODE, FaultInjector,
                   FaultPlan, FaultSpec, InjectedIOError,
                   InjectedMemoryError, InjectedTransientError,
                   InjectionEvent, install_from_env)
from .sites import (FAULT_KINDS, FILTER_KINDS, SITES, VISIT_KINDS, Site,
                    check_plan, match_sites, sites_for_kind)

__all__ = [
    "ChaosScorecard", "HarnessAttempt", "HarnessResult", "build_plan",
    "format_scorecard", "mask_report_times", "oracle_check",
    "restart_until_complete", "run_chaos", "run_kill_chaos",
    "strip_times", "table1_argv", "verify_run",
    "active", "fault_point", "filter_bytes", "filter_labels", "install",
    "installed", "uninstall",
    "ENV_PLAN", "ENV_STATS", "KILL_EXIT_CODE", "FaultInjector",
    "FaultPlan", "FaultSpec", "InjectedIOError", "InjectedMemoryError",
    "InjectedTransientError", "InjectionEvent", "install_from_env",
    "FAULT_KINDS", "FILTER_KINDS", "SITES", "VISIT_KINDS", "Site",
    "check_plan", "match_sites", "sites_for_kind",
]

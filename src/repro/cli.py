"""Command-line interface: ``repro-ser`` (or ``python -m repro.cli``).

Subcommands
-----------
``analyze``
    SER analysis (eq. 4) of a ``.bench``/BLIF netlist.
``retime``
    Run MinObs or MinObsWin on a netlist and write the retimed netlist.
``compare``
    The per-circuit Table I experiment: original vs MinObs vs MinObsWin.
``table1``
    Regenerate the whole Table I on the synthetic suite.
``generate``
    Emit a synthetic benchmark circuit to a file.
``chaos``
    Run the suite under deterministic fault injection and print a
    recovery scorecard (see :mod:`repro.faultplane`).
``trace``
    Render a span trace written by ``--trace`` (``summarize`` / ``top``
    / ``flame``; see :mod:`repro.telemetry`).
``serve``
    Run the resident retiming service: a durable job queue behind a
    small HTTP API (see :mod:`repro.service` and ``docs/service.md``).
    ``--trace``/``--access-log``/``--profile`` turn on the service
    observability plane (``docs/observability.md``).
``ops``
    Live terminal console over a running service: queue depth, worker
    liveness, breaker state, per-endpoint latency quantiles.
``corpus``
    Generate, verify or list the synthetic workload corpus tiers
    (see :mod:`repro.corpus` and ``docs/corpus.md``).
``matrix``
    Run the scenario matrix (corpus x fault model x solver config) and
    emit / check its per-cell golden digest table.

``table1``, ``chaos`` and ``matrix`` handle SIGTERM/SIGINT gracefully:
the current checkpoint state is preserved (parallel runs salvage
completed shard checkpoints first) and the process exits with
:data:`INTERRUPT_EXIT_CODE` so callers can distinguish "operator
stopped it, resume later" from real failures.

``table1``, ``chaos`` and ``matrix`` accept ``--trace``/``--trace-dir``
(structured span trace of the run) and ``--metrics-out``
(metrics-registry dump); ``table1`` and ``serve`` additionally accept
``--profile`` (periodic stack-sampling profiler, rendered by ``trace
flame``).

Every command honours the ``REPRO_FAULT_PLAN`` environment variable
(inline fault-plan JSON or a path): when set, the named injection sites
are armed before the command runs -- this is how the chaos harness
breaks child processes.
"""

from __future__ import annotations

import argparse
import os
import sys

from ._util import percent
from .errors import ReproError, WorkerCrashError

#: Exit code of an operator interrupt (SIGTERM/SIGINT) of a suite run:
#: the checkpointed manifest is intact and ``--resume`` continues the
#: run.  75 is sysexits' EX_TEMPFAIL ("try again later") -- distinct
#: from ordinary failures (1) and injected kills
#: (:data:`repro.faultplane.plan.KILL_EXIT_CODE`).
INTERRUPT_EXIT_CODE = 75

#: Subcommands whose checkpoint/resume machinery makes an interrupt
#: safe to convert into a clean "stopped, resume later" exit.
_INTERRUPTIBLE = ("table1", "chaos", "matrix")


#: Extensions `_load` understands, mapped to their reader names.
_LOADERS = {".bench": "load_bench", ".blif": "load_blif"}


def _load(path: str):
    import os

    from . import netlist

    ext = os.path.splitext(path)[1].lower()
    reader = _LOADERS.get(ext)
    if reader is None:
        supported = ", ".join(sorted(_LOADERS))
        raise ReproError(
            f"unsupported netlist extension {ext or '(none)'!r} for "
            f"{path!r}: supported input formats are {supported} "
            f"(.v is write-only)")
    return getattr(netlist, reader)(path)


def _save(circuit, path: str) -> None:
    from .netlist import dump_bench, dump_blif, dump_verilog

    if path.endswith(".blif"):
        dump_blif(circuit, path)
    elif path.endswith(".v"):
        dump_verilog(circuit, path)
    else:
        dump_bench(circuit, path)


def cmd_analyze(args: argparse.Namespace) -> int:
    from .flatcore import core_mode
    from .graph.retiming_graph import RetimingGraph
    from .graph.timing import achieved_period
    from .ser.analysis import analyze_ser
    from .ser.report import format_ser_report

    circuit = _load(args.netlist)
    # Use the library's register characterization exactly the way
    # pipeline.optimize_circuit does, so the SER reported here matches
    # the pipeline's numbers for the same netlist and clock period.
    setup = circuit.library.setup_time
    hold = circuit.library.hold_time
    if args.phi is None:
        graph = RetimingGraph.from_circuit(circuit)
        args.phi = achieved_period(graph, graph.zero_retiming(), setup)
    with core_mode(args.core):
        analysis = analyze_ser(circuit, args.phi, setup, hold,
                               n_frames=args.frames,
                               n_patterns=args.patterns, seed=args.seed)
    print(format_ser_report(circuit.name, analysis, top=args.top))
    return 0


def cmd_retime(args: argparse.Namespace) -> int:
    from .flatcore import core_mode
    from .pipeline import optimize_circuit

    circuit = _load(args.netlist)
    with core_mode(args.core):
        result = optimize_circuit(
            circuit, algorithms=(args.algorithm,), n_frames=args.frames,
            n_patterns=args.patterns, seed=args.seed,
            epsilon=args.epsilon, maximal_start=args.maximal_start,
            deadline=args.deadline)
    outcome = result.outcomes[args.algorithm]
    print(f"circuit      : {circuit.name}")
    print(f"phi / R_min  : {result.phi:.3f} / {result.init.rmin:.3f}"
          f"{'  (fallback init)' if result.init.used_fallback else ''}")
    print(f"registers    : {result.registers} -> {outcome.registers} "
          f"({percent(outcome.registers, result.registers):+.1f}%)")
    print(f"SER (eq. 4)  : {result.ser_original.total:.4e} -> "
          f"{outcome.ser.total:.4e} "
          f"({percent(outcome.ser.total, result.ser_original.total):+.1f}%)")
    print(f"solver       : #J={outcome.result.commits} "
          f"iterations={outcome.result.iterations} "
          f"time={outcome.result.runtime:.2f}s")
    if args.output:
        _save(outcome.circuit, args.output)
        print(f"retimed netlist written to {args.output}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from .flatcore import core_mode
    from .pipeline import optimize_circuit, table1_row
    from .ser.report import format_comparison

    circuit = _load(args.netlist)
    with core_mode(args.core):
        result = optimize_circuit(circuit, n_frames=args.frames,
                                  n_patterns=args.patterns,
                                  seed=args.seed, epsilon=args.epsilon,
                                  maximal_start=args.maximal_start,
                                  deadline=args.deadline)
    print(format_comparison([table1_row(result)]))
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    from .circuits.suites import TABLE1_ROWS
    from .runtime.suite import SuiteConfig, run_suite
    from .ser.report import format_comparison

    names = args.circuits or [row.name for row in TABLE1_ROWS]
    trace_path = _trace_path(args, "table1")
    profiler = _start_profiler(args)
    config = SuiteConfig(
        circuits=tuple(names), scale=args.scale, seed=args.seed,
        n_frames=args.frames, n_patterns=args.patterns,
        epsilon=args.epsilon, maximal_start=args.maximal_start,
        deadline=args.deadline, max_retries=args.max_retries,
        retry_backoff=args.retry_backoff,
        strict=args.strict, guard=not args.no_guard,
        workers=args.workers, cache=_use_cache(args),
        cache_dir=args.cache_dir, trace_path=trace_path,
        core=args.core)
    progress = (lambda line: print(line, file=sys.stderr)) \
        if args.verbose else None
    try:
        suite = run_suite(config, manifest_path=args.resume,
                          progress=progress)
    finally:
        _finish_profiler(args, profiler)
    rows = suite.rows
    print(format_comparison(rows))
    _print_table1_averages(rows)
    for failure in suite.failures:
        print(f"warning: {failure.circuit}/{failure.stage}"
              f"[{failure.rung}] {failure.error}: {failure.message} "
              f"-> {failure.action}", file=sys.stderr)
    if args.json:
        from .reporting import save_results

        save_results(suite.reports, args.json)
        print(f"JSON report written to {args.json}", file=sys.stderr)
    _finish_telemetry(args, trace_path)
    return 0


def _start_profiler(args: argparse.Namespace):
    """Start the sampling profiler when ``--profile`` was given."""
    if not getattr(args, "profile", None):
        return None
    from .telemetry.profiler import StackProfiler

    profiler = StackProfiler(interval=args.profile_interval)
    profiler.start()
    return profiler


def _finish_profiler(args: argparse.Namespace, profiler) -> None:
    """Stop the profiler and write the collapsed-stack file (advisory:
    a kill mid-run still leaves the checkpointed suite state intact, so
    a failed profile write must not fail the command)."""
    if profiler is None:
        return
    profiler.stop()
    try:
        profiler.write(args.profile)
    except OSError as exc:
        print(f"warning: could not write profile {args.profile}: {exc}",
              file=sys.stderr)
        return
    print(f"profile written to {args.profile} "
          f"({profiler.samples} samples); render it with "
          f"'repro-ser trace flame {args.profile}'", file=sys.stderr)


def _trace_path(args: argparse.Namespace, command: str) -> str | None:
    """Resolve the ``--trace`` / ``--trace-dir`` pair to one file path."""
    if args.trace:
        return args.trace
    if args.trace_dir:
        import os

        return os.path.join(args.trace_dir, f"trace-{command}.jsonl")
    return None


def _finish_telemetry(args: argparse.Namespace,
                      trace_path: str | None) -> None:
    """Post-run telemetry outputs: trace notice and metrics dump."""
    if trace_path:
        print(f"span trace written to {trace_path}", file=sys.stderr)
    if args.metrics_out:
        from .telemetry import REGISTRY

        REGISTRY.write(args.metrics_out)
        print(f"metrics dump written to {args.metrics_out}",
              file=sys.stderr)


def _use_cache(args: argparse.Namespace) -> bool:
    """Resolve the ``--cache`` / ``--no-cache`` / ``--cache-dir`` triple.

    ``--cache-dir`` implies ``--cache``; ``--no-cache`` wins over both
    (useful to prove a result is cache-independent without editing the
    rest of the command line).
    """
    return (args.cache or args.cache_dir is not None) and not args.no_cache


def _print_table1_averages(rows) -> None:
    import math

    def mean(values):
        finite = [v for v in values if math.isfinite(v)]
        return sum(finite) / len(finite) if finite else float("nan")

    d_ref = [percent(r["ref_ser"], r["ser"]) for r in rows]
    d_new = [percent(r["new_ser"], r["ser"]) for r in rows]
    ratio = [100.0 * r["ref_ser"] / r["new_ser"] for r in rows
             if r["new_ser"]]
    dff_ref = [percent(r["ref_ff"], r["FF"]) for r in rows]
    dff_new = [percent(r["new_ff"], r["FF"]) for r in rows]
    print(f"AVG  dSER_ref {mean(d_ref):+.1f}%  "
          f"dSER_new {mean(d_new):+.1f}%  "
          f"SER_ref/SER_new {mean(ratio):.0f}%  "
          f"dFF_ref {mean(dff_ref):+.1f}%  "
          f"dFF_new {mean(dff_new):+.1f}%")


def cmd_chaos(args: argparse.Namespace) -> int:
    from .circuits.suites import TABLE1_ROWS
    from .faultplane.chaos import (build_plan, format_scorecard, run_chaos,
                                   run_kill_chaos)
    from .runtime.suite import SuiteConfig

    names = args.circuits or [row.name for row in TABLE1_ROWS[:5]]
    use_cache = _use_cache(args)
    cache_dir = args.cache_dir
    if use_cache and cache_dir is None:
        # The disk tier is where the interesting cache faults live
        # (torn writes, unreadable entries); a memory-only cache would
        # leave the cache.* sites unvisited.
        import tempfile

        cache_dir = tempfile.mkdtemp(prefix="repro-chaos-cache-")
        print(f"analysis cache for chaos run in {cache_dir}",
              file=sys.stderr)
    trace_path = _trace_path(args, "chaos")
    if trace_path and args.kill_prob > 0:
        # The kill harness re-runs the CLI in subprocesses; a hard kill
        # mid-append could tear the shared trace file in the middle of
        # the stream, so tracing covers the in-process modes only.
        print("warning: --trace is ignored with --kill-prob "
              "(subprocess harness)", file=sys.stderr)
        trace_path = None
    config = SuiteConfig(
        circuits=tuple(names), scale=args.scale,
        seed=args.experiment_seed, n_frames=args.frames,
        n_patterns=args.patterns, deadline=args.deadline,
        max_retries=args.max_retries,
        retry_backoff=args.retry_backoff, workers=args.workers,
        cache=use_cache, cache_dir=cache_dir, trace_path=trace_path,
        core=args.core)
    # Kill mode arms only kill faults by default: a deterministic
    # always-firing fault would make every restart fail identically.
    kinds = args.kinds
    if args.kill_prob > 0 and kinds is None:
        kinds = ["kill"]
    sites = args.sites
    if sites is None and args.kill_prob == 0:
        # In-process default: the sites the recovery ladder wraps.
        # suite.circuit.start is crash-isolation (whole row fails) and
        # manifest/parse sites are not visited without --resume /
        # file-based circuits, so arming them is noise here.  Cache
        # sites only exist when the analysis cache is on.
        sites = ["solve.*", "sim.*", "ser.*"]
        if use_cache:
            sites.append("cache.*")
    plan = build_plan(seed=args.seed, sites=sites, kinds=kinds,
                      trigger=args.trigger, arms=args.arms,
                      probability=args.prob, kill_prob=args.kill_prob)
    progress = (lambda line: print(line, file=sys.stderr)) \
        if args.verbose else None
    if args.kill_prob > 0:
        import tempfile

        workdir = args.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
        print(f"kill-loop chaos in {workdir}", file=sys.stderr)
        _, card = run_kill_chaos(config, plan, workdir,
                                 max_restarts=args.max_restarts,
                                 verify=not args.no_verify,
                                 progress=progress)
    else:
        _, card = run_chaos(config, plan, verify=not args.no_verify,
                            oracle=args.oracle, progress=progress)
    print(format_scorecard(card))
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(card.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"scorecard written to {args.json}", file=sys.stderr)
    _finish_telemetry(args, trace_path)
    return 1 if card.wrong_answers else 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .service.app import RetimingService, ServiceConfig

    trace_path = _trace_path(args, "serve")
    config = ServiceConfig(
        root=args.root, host=args.host, port=args.port, pool=args.pool,
        queue_limit=args.queue_limit, rate=args.rate, burst=args.burst,
        lease_seconds=args.lease_seconds, max_requeues=args.max_requeues,
        max_crashes=args.max_crashes, isolation=args.isolation,
        worker_memory_mb=args.worker_memory,
        worker_cpu_seconds=args.worker_cpu,
        worker_wall_seconds=args.worker_wall,
        memory_budget_mb=args.memory_budget, seed=args.seed,
        scale=args.scale, deadline=args.deadline,
        max_retries=args.max_retries, retry_backoff=args.retry_backoff,
        cache=not args.no_cache, drain_after_idle=args.drain_after_idle,
        idle_grace=args.idle_grace, drain_timeout=args.drain_timeout,
        verbose=args.verbose, core=args.core,
        trace_path=trace_path, access_log=args.access_log,
        profile_path=args.profile,
        profile_interval=args.profile_interval)
    service = RetimingService(config)
    code = service.serve()
    if args.metrics_out:
        from .telemetry import REGISTRY

        REGISTRY.write(args.metrics_out)
    if trace_path:
        print(f"span trace written to {trace_path}", file=sys.stderr)
    if args.profile:
        print(f"profile written to {args.profile}", file=sys.stderr)
    return code


def cmd_ops(args: argparse.Namespace) -> int:
    from .service.ops import run_console

    try:
        return run_console(args.root, interval=args.interval,
                           count=args.count, once=args.once)
    except KeyboardInterrupt:
        print()  # leave the cursor on a fresh line after ^C
        return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from .telemetry.profiler import (is_profile_file, load_profile,
                                     render_profile)
    from .telemetry.traceview import (filter_trace, flame, load_trace,
                                      summarize_trace, top_spans)

    if is_profile_file(args.trace_file):
        # Collapsed-stack profiler output (--profile): flame is the one
        # sensible rendering -- the stacks have no spans to rank.
        if args.action != "flame":
            raise ReproError(
                f"{args.trace_file} is a sampling profile; render it "
                f"with 'trace flame' (summarize/top need a span trace)")
        print(render_profile(load_profile(args.trace_file),
                             max_depth=args.depth))
        return 0
    trace = load_trace(args.trace_file)
    if args.job:
        trace = filter_trace(trace, args.job)
    if trace.skipped:
        print(f"note: skipped {trace.skipped} unparsable line(s) "
              f"(torn writes are expected after kills)", file=sys.stderr)
    if args.action == "summarize":
        print(summarize_trace(trace))
    elif args.action == "top":
        print(top_spans(trace, limit=args.limit))
    else:
        print(flame(trace, max_depth=args.depth))
    return 0


def cmd_corpus(args: argparse.Namespace) -> int:
    from .corpus import FAMILIES, TIERS, tier_specs, verify_corpus, \
        write_corpus

    if args.action == "list":
        print("families:")
        for family in FAMILIES.values():
            scale = "" if family.scalable else "  (not 1e5-scalable)"
            print(f"  {family.name:14s} {family.description}{scale}")
        print("tiers:")
        for tier, specs in TIERS.items():
            print(f"  {tier}: {len(specs)} circuits")
            for spec in specs:
                print(f"    {spec.name:10s} {spec.family:14s} "
                      f"{spec.fmt:5s} {spec.library:14s} seed={spec.seed}")
        return 0
    if args.action == "generate":
        if not args.target:
            raise ReproError("corpus generate needs an output directory")
        payload = write_corpus(args.tier, args.target)
        for name, entry in sorted(payload["circuits"].items()):
            stats = entry["stats"]
            print(f"{name:12s} {entry['file']:18s} "
                  f"gates={stats['gates']:6d} dffs={stats['dffs']:6d} "
                  f"{entry['sha256'][:23]}")
        print(f"wrote {len(payload['circuits'])} circuits + manifest "
              f"to {args.target}")
        return 0
    # verify
    if not args.target:
        raise ReproError("corpus verify needs a manifest path")
    tier_specs(args.tier)  # fail early on a bad --tier (unused otherwise)
    target = args.target
    if os.path.isdir(target):
        from .corpus.manifest import MANIFEST_BASENAME

        target = os.path.join(target, MANIFEST_BASENAME)
    problems = verify_corpus(target)
    if problems:
        for problem in problems:
            print(f"MISMATCH {problem}")
        print(f"{len(problems)} problem(s): the corpus is not "
              f"byte-reproducible from this manifest")
        return 1
    print(f"corpus verified: every circuit regenerates byte-identically "
          f"({args.target})")
    return 0


def cmd_matrix(args: argparse.Namespace) -> int:
    from .corpus import run_matrix, write_digest_table

    trace_path = _trace_path(args, "matrix")
    progress = (lambda line: print(line, file=sys.stderr)) \
        if args.verbose else None
    result = run_matrix(
        args.tier, out_dir=args.out,
        scenarios=tuple(args.scenarios) if args.scenarios else None,
        circuits=tuple(args.circuits) if args.circuits else None,
        workers=args.workers, cache=_use_cache(args),
        cache_dir=args.cache_dir, max_retries=args.max_retries,
        trace_path=trace_path, core=args.core, progress=progress)
    for key in sorted(result.cells):
        print(f"{key:36s} {result.statuses[key]:24s} "
              f"{result.cells[key][:23]}")
    not_ok = sum(1 for s in result.statuses.values() if s != "ok")
    print(f"{len(result.cells)} cells, {not_ok} degraded")
    table = result.digest_table()
    if args.digests:
        write_digest_table(table, args.digests)
        print(f"digest table written to {args.digests}", file=sys.stderr)
    code = 0
    if args.check:
        from .corpus import compare_digest_tables, load_digest_table

        golden = load_digest_table(args.check)
        if args.scenarios or args.circuits:
            # A subset run checks only the cells it covered.
            golden = dict(golden)
            golden["cells"] = {k: v for k, v in golden["cells"].items()
                               if k in result.cells}
        mismatches = compare_digest_tables(table, golden)
        for mismatch in mismatches:
            print(f"MISMATCH {mismatch}")
        if mismatches:
            print(f"{len(mismatches)} cell(s) deviate from the golden "
                  f"digest table {args.check}")
            code = 1
        else:
            print(f"all {len(table['cells'])} cells match the golden "
                  f"digest table")
    _finish_telemetry(args, trace_path)
    return code


def cmd_generate(args: argparse.Namespace) -> int:
    from .circuits.generators import random_sequential_circuit
    from .circuits.suites import table1_circuit

    if args.row:
        circuit = table1_circuit(args.row, scale=args.scale,
                                 seed=args.seed)
    else:
        circuit = random_sequential_circuit(
            args.name, n_gates=args.gates, n_dffs=args.dffs,
            n_inputs=args.inputs, n_outputs=args.outputs, seed=args.seed)
    _save(circuit, args.output)
    stats = circuit.stats()
    print(f"wrote {args.output}: {stats}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ser",
        description="Soft-error-aware retiming (Lu & Zhou, DATE 2013)")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--frames", type=int, default=15,
                       help="time-frame expansion depth (paper: 15)")
        p.add_argument("--patterns", type=int, default=256,
                       help="simulation patterns K")
        p.add_argument("--seed", type=int, default=0)

    def core_opts(p):
        p.add_argument("--core", choices=("flat", "object", "auto"),
                       default="auto",
                       help="analysis engine: 'flat' (vectorized CSR "
                            "arena), 'object' (reference netlist walk) "
                            "or 'auto' (flat with object fallback; "
                            "default).  Results are bit-identical "
                            "either way -- the knob never enters cache "
                            "keys or digests")

    p = sub.add_parser("analyze", help="SER analysis of a netlist")
    p.add_argument("netlist")
    p.add_argument("--phi", type=float, default=None,
                   help="clock period (default: combinational period)")
    p.add_argument("--top", type=int, default=10,
                   help="contributors to list")
    common(p)
    core_opts(p)
    p.set_defaults(func=cmd_analyze)

    def solver_opts(p):
        p.add_argument("--epsilon", type=float, default=0.10,
                       help="period relaxation of Sec. V")
        p.add_argument("--maximal-start", action="store_true",
                       help="start from the pointwise-maximal feasible "
                            "retiming instead of the Sec. V start")
        p.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="per-stage wall-clock budget; an expired "
                            "solve yields its best feasible retiming "
                            "(table1 degrades, retime/compare abort)")

    def trace_opts(p):
        p.add_argument("--trace", default=None, metavar="FILE",
                       help="write a structured span trace (JSONL) of "
                            "the run here; read it back with "
                            "'repro-ser trace'")
        p.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="like --trace, but pick the file name "
                            "(trace-<command>.jsonl) inside DIR")
        p.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="dump the metrics registry after the run "
                            "(JSON, or Prometheus text for .prom/.txt)")

    def profile_opts(p):
        p.add_argument("--profile", default=None, metavar="FILE",
                       help="run the periodic stack-sampling profiler "
                            "and write collapsed stacks here; render "
                            "with 'repro-ser trace flame FILE'")
        p.add_argument("--profile-interval", type=float, default=0.01,
                       metavar="SECONDS",
                       help="sampling period of --profile (default "
                            "0.01s)")

    def cache_opts(p):
        p.add_argument("--cache", action="store_true",
                       help="memoize expensive analyses in a "
                            "content-addressed cache (warm results are "
                            "bit-identical to cold ones)")
        p.add_argument("--no-cache", action="store_true",
                       help="force caching off (overrides --cache and "
                            "--cache-dir)")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="on-disk cache tier, shared across runs and "
                            "worker processes (implies --cache)")

    p = sub.add_parser("retime", help="retime a netlist for low SER")
    p.add_argument("netlist")
    p.add_argument("-a", "--algorithm", default="minobswin",
                   choices=("minobs", "minobswin"))
    p.add_argument("-o", "--output", default=None,
                   help="write the retimed netlist (.bench/.blif/.v)")
    common(p)
    solver_opts(p)
    core_opts(p)
    p.set_defaults(func=cmd_retime)

    p = sub.add_parser("compare", help="MinObs vs MinObsWin on a netlist")
    p.add_argument("netlist")
    common(p)
    solver_opts(p)
    core_opts(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("table1", help="regenerate Table I")
    p.add_argument("circuits", nargs="*",
                   help="row names (default: all 21)")
    p.add_argument("--scale", type=float, default=None,
                   help="suite scale factor (default from suites module)")
    p.add_argument("--json", default=None,
                   help="also write a machine-readable report here")
    p.add_argument("--resume", default=None, metavar="MANIFEST",
                   help="checkpoint manifest path: completed circuits "
                        "are written there after each row and skipped "
                        "when re-running after an interruption")
    p.add_argument("--max-retries", type=int, default=1,
                   help="extra attempts per stage before degrading "
                        "(stochastic stages reseed on retry)")
    p.add_argument("--retry-backoff", type=float, default=0.0,
                   metavar="SECONDS",
                   help="base of the seeded exponential backoff (with "
                        "jitter) slept between retries of a stage "
                        "(default 0: retry immediately)")
    p.add_argument("--strict", action="store_true",
                   help="abort on the first failure instead of "
                        "degrading (debugging mode)")
    p.add_argument("--no-guard", action="store_true",
                   help="skip the post-retime verification guard")
    p.add_argument("-w", "--workers", type=int, default=1,
                   help="worker processes; >1 shards the suite across "
                        "a process pool with a deterministic merge "
                        "(same result checksum as a serial run)")
    p.add_argument("-v", "--verbose", action="store_true")
    common(p)
    solver_opts(p)
    cache_opts(p)
    trace_opts(p)
    profile_opts(p)
    core_opts(p)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser(
        "chaos",
        help="run the suite under fault injection, print a recovery "
             "scorecard")
    p.add_argument("circuits", nargs="*",
                   help="row names (default: the 5 smallest Table I rows)")
    p.add_argument("--seed", type=int, default=0,
                   help="fault-plan seed (the whole fault sequence is a "
                        "pure function of it)")
    p.add_argument("--sites", nargs="+", default=None, metavar="GLOB",
                   help="injection sites to arm, names or globs "
                        "(default: all; see repro.faultplane.sites)")
    p.add_argument("--kinds", nargs="+", default=None, metavar="KIND",
                   help="fault kinds to arm (default: every recoverable "
                        "kind each site lists)")
    p.add_argument("--trigger", type=int, default=1,
                   help="fire on the Nth visit of each armed site")
    p.add_argument("--arms", type=int, default=1,
                   help="times each fault may fire (-1 = unlimited)")
    p.add_argument("--prob", type=float, default=1.0,
                   help="per-visit firing probability once triggered")
    p.add_argument("--kill-prob", type=float, default=0.0,
                   help="arm kill-capable sites with this probability and "
                        "run the subprocess kill/restart harness instead "
                        "of the in-process run")
    p.add_argument("--workdir", default=None,
                   help="kill-harness working directory (default: a "
                        "fresh temp dir)")
    p.add_argument("--max-restarts", type=int, default=40,
                   help="restart budget of the kill harness")
    p.add_argument("--oracle", action="store_true",
                   help="cross-check every outcome against the "
                        "brute-force oracle (small circuits only)")
    p.add_argument("--no-verify", action="store_true",
                   help="skip the clean differential reference run")
    p.add_argument("--scale", type=float, default=None,
                   help="suite scale factor (default from suites module)")
    p.add_argument("--experiment-seed", type=int, default=0,
                   help="experiment seed of the suite under test "
                        "(--seed is the fault-plan seed)")
    p.add_argument("--deadline", type=float, default=None,
                   metavar="SECONDS", help="per-stage wall-clock budget")
    p.add_argument("--max-retries", type=int, default=1)
    p.add_argument("--retry-backoff", type=float, default=0.0,
                   metavar="SECONDS",
                   help="base of the seeded retry backoff (0 = retry "
                        "immediately)")
    p.add_argument("--json", default=None,
                   help="also write the scorecard as JSON here")
    p.add_argument("--frames", type=int, default=15)
    p.add_argument("--patterns", type=int, default=256)
    p.add_argument("-w", "--workers", type=int, default=1,
                   help="worker processes for the suite under test "
                        "(fault plans propagate with per-shard seeds)")
    p.add_argument("-v", "--verbose", action="store_true")
    cache_opts(p)
    trace_opts(p)
    core_opts(p)
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "trace",
        help="render a span trace written by --trace (summarize/top/"
             "flame)")
    p.add_argument("action", choices=("summarize", "top", "flame"),
                   help="summarize: per-circuit stage breakdown; top: "
                        "spans ranked by self time; flame: indented "
                        "span tree")
    p.add_argument("trace_file",
                   help="trace JSONL file (or, for 'flame', a "
                        "collapsed-stack profile from --profile)")
    p.add_argument("-n", "--limit", type=int, default=15,
                   help="rows shown by 'top'")
    p.add_argument("--depth", type=int, default=None,
                   help="maximum tree depth shown by 'flame'")
    p.add_argument("--job", default=None, metavar="ID",
                   help="restrict a multi-job service trace to one job "
                        "(job id or trace id)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "serve",
        help="run the retiming service (durable job queue + HTTP API)")
    p.add_argument("--root", required=True, metavar="DIR",
                   help="queue directory (job records, journal, cache, "
                        "endpoint file); created if missing")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default 0: ephemeral, published in "
                        "<root>/service.json)")
    p.add_argument("--pool", type=int, default=2,
                   help="worker threads sharing one warm analysis cache")
    p.add_argument("--queue-limit", type=int, default=64,
                   help="max jobs in flight before submissions get 429")
    p.add_argument("--rate", type=float, default=10.0,
                   help="per-tenant submissions/second refill rate")
    p.add_argument("--burst", type=float, default=20.0,
                   help="per-tenant token-bucket burst")
    p.add_argument("--lease-seconds", type=float, default=60.0,
                   help="job lease duration; an expired lease requeues "
                        "the job exactly once")
    p.add_argument("--max-requeues", type=int, default=2,
                   help="crash/expiry requeues before quarantine")
    p.add_argument("--isolation", choices=("thread", "process"),
                   default="thread",
                   help="worker execution mode: in-process threads "
                        "(default) or one sandboxed subprocess per job "
                        "(rlimit budgets, wall-clock watchdog, crash "
                        "containment)")
    p.add_argument("--max-crashes", type=int, default=3,
                   help="times a job may kill its worker before it is "
                        "quarantined as poison (process isolation)")
    p.add_argument("--worker-memory", type=float, default=None,
                   metavar="MIB",
                   help="per-job address-space rlimit for sandboxed "
                        "workers; leave ~250 MiB headroom for the "
                        "interpreter baseline")
    p.add_argument("--worker-cpu", type=float, default=None,
                   metavar="SECONDS",
                   help="per-job CPU rlimit for sandboxed workers")
    p.add_argument("--worker-wall", type=float, default=None,
                   metavar="SECONDS",
                   help="per-job wall-clock watchdog for sandboxed "
                        "workers (SIGTERM, then SIGKILL)")
    p.add_argument("--memory-budget", type=float, default=None,
                   metavar="MIB",
                   help="shed new submissions (503 + Retry-After) while "
                        "the service's resident set exceeds this")
    p.add_argument("--seed", type=int, default=0,
                   help="seeds the supervisor's restart-jitter stream")
    p.add_argument("--scale", type=float, default=None,
                   help="default circuit scale for named Table I jobs")
    p.add_argument("--deadline", type=float, default=None,
                   metavar="SECONDS", help="per-stage wall-clock budget")
    p.add_argument("--max-retries", type=int, default=1)
    p.add_argument("--retry-backoff", type=float, default=0.0,
                   metavar="SECONDS",
                   help="base of the seeded retry backoff (0 = retry "
                        "immediately)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the shared analysis cache")
    p.add_argument("--drain-after-idle", action="store_true",
                   help="exit 0 once the queue has been idle for "
                        "--idle-grace seconds (batch mode)")
    p.add_argument("--idle-grace", type=float, default=2.0)
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   help="seconds a drain waits for in-flight jobs before "
                        "releasing their leases")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="dump the metrics registry after the drain")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write the service's span trace (JSONL) here: "
                        "every job becomes one merged span tree "
                        "(admission -> queue wait -> execute -> "
                        "persist), sandbox subprocesses included")
    p.add_argument("--trace-dir", default=None, metavar="DIR",
                   help="like --trace, but pick the file name "
                        "(trace-serve.jsonl) inside DIR")
    p.add_argument("--access-log", default=None, metavar="FILE",
                   help="append one JSONL line per HTTP request here "
                        "(carries the request's trace id)")
    profile_opts(p)
    p.add_argument("-v", "--verbose", action="store_true")
    core_opts(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "ops",
        help="live terminal console over a running service (queue "
             "depth, worker liveness, latency quantiles)")
    p.add_argument("--root", required=True, metavar="DIR",
                   help="the service's queue directory (the console "
                        "reads <root>/service.json for the endpoint)")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between redraws (default 2)")
    p.add_argument("--count", type=int, default=None, metavar="N",
                   help="print N snapshots (no screen clearing) and "
                        "exit")
    p.add_argument("--once", action="store_true",
                   help="print one snapshot and exit (same as "
                        "--count 1)")
    p.set_defaults(func=cmd_ops)

    p = sub.add_parser(
        "corpus",
        help="generate, verify or list the synthetic workload corpus")
    p.add_argument("action", choices=("generate", "verify", "list"),
                   help="generate: emit a tier + manifest into a "
                        "directory; verify: prove a manifest's corpus "
                        "regenerates byte-identically; list: show "
                        "families and tiers")
    p.add_argument("target", nargs="?", default=None,
                   help="generate: output directory; verify: manifest "
                        "path")
    p.add_argument("--tier", default="small",
                   choices=("small", "medium", "large"),
                   help="corpus tier (default: small)")
    p.set_defaults(func=cmd_corpus)

    p = sub.add_parser(
        "matrix",
        help="run the scenario matrix (corpus x fault model x solver) "
             "with golden cell digests")
    p.add_argument("tier", nargs="?", default="small",
                   choices=("small", "medium", "large"),
                   help="corpus tier to run (default: small)")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="checkpoint directory: one resumable run "
                        "manifest per scenario; rerunning with the same "
                        "DIR resumes after a kill with no duplicate or "
                        "missing cells")
    p.add_argument("--scenarios", nargs="+", default=None,
                   metavar="NAME",
                   help="scenario subset (default: the tier's full "
                        "list; see repro.corpus.matrix.SCENARIOS)")
    p.add_argument("--circuits", nargs="+", default=None, metavar="NAME",
                   help="circuit subset of the tier (default: all)")
    p.add_argument("--digests", default=None, metavar="FILE",
                   help="write the per-cell digest table here "
                        "(repro-matrix-digests JSON)")
    p.add_argument("--check", default=None, metavar="GOLDEN",
                   help="compare cell digests against a golden digest "
                        "table; exit 1 on any deviation")
    p.add_argument("--max-retries", type=int, default=1,
                   help="extra attempts per stage before degrading")
    p.add_argument("-w", "--workers", type=int, default=1,
                   help="worker processes per scenario (same digests "
                        "as a serial run)")
    p.add_argument("-v", "--verbose", action="store_true")
    cache_opts(p)
    trace_opts(p)
    core_opts(p)
    p.set_defaults(func=cmd_matrix)

    p = sub.add_parser("generate", help="emit a synthetic benchmark")
    p.add_argument("output")
    p.add_argument("--row", default=None,
                   help="Table I row name to mimic")
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--name", default="synthetic")
    p.add_argument("--gates", type=int, default=400)
    p.add_argument("--dffs", type=int, default=120)
    p.add_argument("--inputs", type=int, default=16)
    p.add_argument("--outputs", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_generate)
    return parser


def _install_interrupt_handler() -> None:
    """Map SIGTERM onto :class:`KeyboardInterrupt` for suite commands.

    SIGINT already raises it; with SIGTERM converted too, both
    interrupts unwind through the same ``finally`` blocks (the serial
    suite's per-circuit checkpoint is already durable; the parallel
    executor additionally salvages completed shard checkpoints on the
    way out) and :func:`main` turns them into a clean
    :data:`INTERRUPT_EXIT_CODE` exit.  Main-thread only -- under the
    parallel executor the workers are separate processes with their own
    default handlers, which is exactly what we want: the parent decides
    when to stop.
    """
    import signal
    import threading

    if threading.current_thread() is not threading.main_thread():
        return  # signal registration is a main-thread-only API

    def raise_interrupt(signum, frame):
        raise KeyboardInterrupt(f"signal {signum}")

    signal.signal(signal.SIGTERM, raise_interrupt)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "scale", None) is None and \
            args.command in ("table1", "generate", "chaos", "serve"):
        from .circuits.suites import DEFAULT_SCALE

        args.scale = DEFAULT_SCALE
    if args.command in _INTERRUPTIBLE:
        _install_interrupt_handler()
    injector = None
    try:
        import os

        if os.environ.get("REPRO_FAULT_PLAN"):
            from .faultplane.plan import install_from_env

            injector = install_from_env()
        return args.func(args)
    except KeyboardInterrupt:
        if args.command not in _INTERRUPTIBLE:
            raise
        print("interrupted: checkpointed progress is preserved; rerun "
              "with --resume MANIFEST to continue the run",
              file=sys.stderr)
        return INTERRUPT_EXIT_CODE
    except WorkerCrashError as exc:
        # A parallel worker died hard (e.g. an injected kill); every
        # completed shard was salvaged into the manifest.  Exit with the
        # kill code so the restart harness resumes instead of treating
        # the run as a deterministic failure.
        from .faultplane.plan import KILL_EXIT_CODE

        print(f"error: {exc}", file=sys.stderr)
        return KILL_EXIT_CODE
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        # unreadable netlists, unwritable outputs / run manifests
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if injector is not None:
            injector.flush_stats()
            from .faultplane import hooks

            hooks.uninstall()


if __name__ == "__main__":
    sys.exit(main())

"""The HTTP front end: stdlib ``http.server``, zero dependencies.

A :class:`~http.server.ThreadingHTTPServer` (daemon threads) serves::

    POST /jobs              submit a job            -> 202 + job record
    GET  /jobs              queue summary           -> 200
    GET  /jobs/<id>         job record              -> 200 / 404
    GET  /jobs/<id>/result  terminal result         -> 200 / 409 / 404
    GET  /healthz           liveness + worker facts -> 200 (always)
    GET  /readyz            readiness               -> 200 / 503
    GET  /metrics           Prometheus text         -> 200
    GET  /metrics.json      registry snapshot JSON  -> 200

Every request, whatever the route or outcome, passes through the
observability envelope (:meth:`ServiceRequestHandler._handle`): an
``http.seconds.<route>`` latency observation, an
``http.requests.<route>.<Nxx>`` status-class count, one JSONL
access-log line, and -- tracing on -- an ``http.request`` span.  A
``POST /jobs`` mints the job's trace id; the request span's id becomes
the job's durable root span (``docs/observability.md``).

``/healthz`` answers "is the process up" and carries the worker-pool
liveness snapshot (workers alive, heartbeat age, supervisor breaker
state) purely as diagnostics; ``/readyz`` is the routing verdict and
goes 503 -- with ``Retry-After``, like every other shedding response --
while draining, while the worker pool is dead or churning (supervisor
breaker open), or while the queue is full.

Every error is a structured JSON body ``{"error": {"status", "message",
"field"?, "retry_after"?}}`` -- admission rejections arrive as
:class:`~repro.errors.AdmissionError` and are rendered field-for-field;
anything unexpected during submission (including injected
``service.accept`` faults) maps to a 503 with ``Retry-After``, which is
safe precisely because admission touches no durable state before the
queue's submit: a client that never saw a 202 has nothing to lose.

Transient rejections (429 full/ratelimited, 503 draining, 409 result
not ready) all carry ``Retry-After`` so a dumb retry loop converges.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import urlsplit

from ..errors import AdmissionError
from ..telemetry import REGISTRY
from ..telemetry import spans as telemetry

#: Largest accepted request body, in bytes.
MAX_BODY_BYTES = 2 << 20

#: Known normalized endpoint labels (the SLO-plane metric keys).
ROUTE_LABELS = ("post_jobs", "get_jobs", "get_job", "get_job_result",
                "healthz", "readyz", "metrics", "metrics_json", "other")


def route_label(method: str, path: str) -> str:
    """Normalize a request into a bounded endpoint label.

    Metric names must have bounded cardinality, so ``/jobs/<id>`` and
    ``/jobs/<id>/result`` collapse to ``get_job``/``get_job_result``
    and anything unrecognized is ``other`` (a scanner walking random
    paths cannot grow the registry).
    """
    if path == "/jobs":
        return "post_jobs" if method == "POST" else "get_jobs"
    if path.startswith("/jobs/"):
        return "get_job_result" if path.endswith("/result") else "get_job"
    if method == "GET" and path in ("/healthz", "/readyz", "/metrics",
                                    "/metrics.json"):
        return path.strip("/").replace(".", "_")
    return "other"


class ServiceHTTPServer(ThreadingHTTPServer):
    """One connection-handling thread per request, all daemonic: a
    drain never waits on an idle keep-alive socket."""

    daemon_threads = True
    #: Set by :func:`build_server`; the handler reaches the service
    #: through ``self.server.service``.
    service: Any = None


class ServiceRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @property
    def service(self):
        return self.server.service

    def log_message(self, format: str, *args: Any) -> None:
        self.service.log(f"http: {self.address_string()} {format % args}")

    def _send_json(self, status: int, payload: dict[str, Any],
                   headers: dict[str, str] | None = None) -> None:
        self._status = status
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; version=0.0.4") -> None:
        self._status = status
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, *,
               field: str | None = None,
               retry_after: float | None = None) -> None:
        error: dict[str, Any] = {"status": status, "message": message}
        headers: dict[str, str] = {}
        if field is not None:
            error["field"] = field
        if retry_after is not None:
            error["retry_after"] = retry_after
            headers["Retry-After"] = str(max(1, round(retry_after)))
        self._send_json(status, {"error": error}, headers=headers)

    # ------------------------------------------------------------------
    # Observability wrapper
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._handle("POST")

    def _handle(self, method: str) -> None:
        """Route the request inside the observability envelope.

        Every request -- whatever route, whatever outcome -- lands in
        the per-endpoint SLO plane (``http.seconds.<route>`` latency
        histogram + ``http.requests.<route>.<Nxx>`` class counters), one
        structured access-log line, and (tracing on) an ``http.request``
        span.  A ``POST /jobs`` mints a fresh trace id here: its span
        becomes the root of the job's whole merged span tree and its
        span id is persisted on the durable job record.
        """
        path = urlsplit(self.path).path.rstrip("/") or "/"
        self._status = 0
        self._span = None
        self._job_id = None
        self._tenant = None
        tracer = telemetry.active()
        if tracer is not None:
            trace_id = telemetry.new_trace_id() \
                if (method, path) == ("POST", "/jobs") else None
            self._span = tracer.begin(
                "http.request", {"method": method, "path": path},
                parent=None, trace=trace_id)
        started = time.perf_counter()
        try:
            if method == "GET":
                self._route_get(path)
            else:
                self._route_post(path)
        except BaseException as exc:
            if self._span is not None:
                self._span.attrs.setdefault("error", type(exc).__name__)
            raise
        finally:
            duration = time.perf_counter() - started
            route = route_label(method, path)
            REGISTRY.histogram(f"http.seconds.{route}").observe(duration)
            klass = f"{self._status // 100}xx" if self._status else "0xx"
            REGISTRY.counter(f"http.requests.{route}.{klass}").inc()
            if self._span is not None:
                self._span.attrs["status"] = self._status
                self._span.attrs["route"] = route
                if self._job_id is not None:
                    self._span.attrs["job"] = self._job_id
                tracer.end(self._span)
            self.service.access(
                {"ts": time.time(), "method": method, "path": path,
                 "route": route, "status": self._status,
                 "dur_ms": round(duration * 1e3, 3),
                 "remote": self.client_address[0]
                 if self.client_address else None,
                 "tenant": self._tenant,
                 "trace": self._span.trace
                 if self._span is not None else None,
                 "job": self._job_id})

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def _route_get(self, path: str) -> None:
        if path == "/healthz":
            self._send_json(200, self.service.health_payload())
            return
        if path == "/readyz":
            ready, why = self.service.readiness()
            if ready:
                self._send_json(200, {"ready": True})
            else:
                self._error(503, why, retry_after=2.0)
            return
        if path == "/metrics":
            self._send_text(200, self.service.metrics_text())
            return
        if path == "/metrics.json":
            self._send_json(200, self.service.metrics_snapshot())
            return
        if path == "/jobs":
            self._send_json(200, self.service.queue_summary())
            return
        if path.startswith("/jobs/"):
            parts = path.split("/")[2:]
            record = self.service.queue.get(parts[0])
            if record is None:
                self._error(404, f"unknown job {parts[0]!r}")
            elif len(parts) == 1:
                self._send_json(200, {"job": record.to_dict()})
            elif parts[1:] == ["result"]:
                if not record.terminal():
                    self._error(
                        409, f"job {record.id} is {record.state}; result "
                        f"not available yet", retry_after=1.0)
                else:
                    self._send_json(200, {
                        "id": record.id, "state": record.state,
                        "result": record.result, "error": record.error})
            else:
                self._error(404, f"no route {path!r}")
            return
        self._error(404, f"no route {path!r}")

    def _route_post(self, path: str) -> None:
        if path != "/jobs":
            self._error(404, f"no route {path!r}")
            return
        if self.service.draining:
            self._error(503, "service is draining", retry_after=10.0)
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._error(411, "Content-Length is required")
            return
        if length > MAX_BODY_BYTES:
            self._error(413, f"request body too large ({length} bytes, "
                             f"max {MAX_BODY_BYTES})")
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._error(400, f"request body is not valid JSON: {exc}")
            return
        try:
            record = self.service.submit(
                payload,
                trace_id=self._span.trace if self._span else None,
                span_id=self._span.id if self._span else None)
        except AdmissionError as exc:
            self._error(exc.status, str(exc), field=exc.field,
                        retry_after=exc.retry_after)
            return
        except Exception as exc:
            # Includes injected service.accept faults: nothing durable
            # happened, so the honest answer is "try again".
            self._error(503, f"submission failed transiently: "
                             f"{type(exc).__name__}: {exc}",
                        retry_after=2.0)
            return
        self._job_id = record.id
        self._tenant = record.tenant
        self._send_json(202, {"job": record.to_dict(),
                              "url": f"/jobs/{record.id}"},
                        headers={"Location": f"/jobs/{record.id}"})


def build_server(service: Any, host: str, port: int) -> ServiceHTTPServer:
    """Bind the HTTP server (``port`` 0 picks an ephemeral port)."""
    server = ServiceHTTPServer((host, port), ServiceRequestHandler)
    server.service = service
    return server

"""The durable job queue: FIFO claims, leases, journal, crash recovery.

One queue = one directory::

    <root>/jobs/<id>.json     one durable record per job (jobs.py)
    <root>/executions.jsonl   append-only execution journal (advisory)

The *records* are the source of truth: every state transition persists
the record durably (atomic tempfile+fsync+rename) *while holding the
queue lock*, so the on-disk state is always a prefix of the in-memory
state and a crash between the two loses at most the transition in
flight -- recovery replays it by requeueing.  A persist that *fails*
(rather than killing the process) rolls the in-memory mutation back to
the last durable state, so memory never runs ahead of disk either.

The *journal* is the auditor: ``start`` is appended only after the
``running`` record is durable and ``done`` only after the ``done``
record is durable, so the kill-loop harness can assert the two
execution invariants directly from the journal -- at most one ``done``
per job, and no ``start`` after a ``done`` (no zombie re-execution of a
completed job).  Journal appends are advisory (flushed, best-effort
fsynced, never allowed to fail a transition).

Recovery (:meth:`JobQueue.recover`) runs once at service startup:
every ``leased``/``running`` record -- a worker died holding it -- is
requeued (consuming one unit of requeue budget; an exhausted budget
quarantines), and unreadable/torn record files are set aside as
``<name>.corrupt`` rather than taking the service down.  At runtime the
monitor loop calls :meth:`JobQueue.requeue_expired` for the same edge
on live leases; the lock makes each expiry requeue exactly once.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from typing import Any, Callable, Iterator

from ..errors import JobStateError
from ..faultplane.hooks import fault_point
from ..telemetry import REGISTRY
from .jobs import (TERMINAL_STATES, JobRecord, load_job, new_job_id,
                   save_job)

JOURNAL_NAME = "executions.jsonl"


def read_journal(root: str | os.PathLike[str]) -> list[dict[str, Any]]:
    """All journal events of a queue directory, in append order.

    Skips unparsable lines (the journal is advisory and its final line
    may be torn by a kill) instead of raising.
    """
    path = os.path.join(os.fspath(root), JOURNAL_NAME)
    events: list[dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn final line after a kill
                if isinstance(event, dict):
                    events.append(event)
    except OSError:
        return []
    return events


class JobQueue:
    """Durable FIFO queue over one queue directory.

    Thread-safe: every transition runs under one re-entrant lock, held
    across the durable persist -- correctness first; at service scale
    (seconds-long jobs, a handful of workers) persist latency under the
    lock is noise.

    ``clock`` is injectable for the lease/expiry property tests.
    """

    def __init__(self, root: str | os.PathLike[str], *,
                 lease_seconds: float = 60.0, max_requeues: int = 2,
                 max_crashes: int = 3,
                 clock: Callable[[], float] = time.time):
        self.root = os.fspath(root)
        self.jobs_dir = os.path.join(self.root, "jobs")
        self.journal_path = os.path.join(self.root, JOURNAL_NAME)
        self.lease_seconds = float(lease_seconds)
        self.max_requeues = int(max_requeues)
        self.max_crashes = int(max_crashes)
        self.clock = clock
        self._lock = threading.RLock()
        self._jobs: dict[str, JobRecord] = {}
        os.makedirs(self.jobs_dir, exist_ok=True)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def _persist(self, record: JobRecord) -> None:
        record.updated_at = self.clock()
        save_job(record, self._path(record.id))

    def _journal(self, event: str, record: JobRecord,
                 **extra: Any) -> None:
        entry = {"event": event, "job": record.id, "ts": self.clock(),
                 "attempt": record.attempts}
        if record.trace_id is not None:
            entry["trace"] = record.trace_id
        if record.span_id is not None:
            entry["span"] = record.span_id
        entry.update(extra)
        line = json.dumps(entry, sort_keys=True) + "\n"
        try:
            with open(self.journal_path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                try:
                    os.fsync(handle.fileno())
                except OSError:
                    pass
        except OSError:
            pass  # the journal is advisory; never fail a transition

    @contextlib.contextmanager
    def _rollback_on_failure(self, record: JobRecord) -> Iterator[None]:
        """Keep memory from running ahead of disk.

        Every transition mutates the in-memory record and then persists
        it; if the persist raises (disk full, injected
        ``service.persist`` fault), the mutation is rolled back to the
        last durable state before the exception propagates.  Without
        this, a failed ``complete`` would leave a record ``done`` in
        memory but ``running`` on disk -- the follow-up requeue would
        then hit an illegal done->queued transition and the job would
        wedge until a restart replayed the disk state.
        """
        snapshot = record.to_dict()
        try:
            yield
        except BaseException:
            record.__dict__.update(JobRecord.from_dict(snapshot).__dict__)
            raise

    def _require(self, job_id: str) -> JobRecord:
        record = self._jobs.get(job_id)
        if record is None:
            raise JobStateError(f"unknown job {job_id!r}", job_id=job_id)
        return record

    def _requeue_locked(self, record: JobRecord, reason: str) -> JobRecord:
        """Requeue or quarantine ``record``, consuming budget."""
        with self._rollback_on_failure(record):
            record.lease = None
            if record.requeues >= record.max_requeues:
                record.transition("quarantined")
                record.error = {
                    "message": f"requeue budget exhausted ({reason})",
                    "reason": reason}
                self._persist(record)
                REGISTRY.counter("service.jobs.quarantined").inc()
                return record
            record.requeues += 1
            record.transition("queued")
            self._persist(record)
        self._journal("requeue", record, reason=reason)
        REGISTRY.counter("service.jobs.requeued").inc()
        return record

    # ------------------------------------------------------------------
    # Lifecycle API
    # ------------------------------------------------------------------
    def submit(self, spec: dict[str, Any],
               tenant: str = "default", *,
               trace_id: str | None = None,
               span_id: str | None = None) -> JobRecord:
        """Durably enqueue a new job; returns the queued record.

        ``trace_id``/``span_id`` are the request-scoped trace context
        minted by the HTTP front door (the trace id and the
        ``http.request`` root span of the submitting POST); they ride
        the durable record for the job's whole life.
        """
        with self._lock:
            now = self.clock()
            record = JobRecord(id=new_job_id(), tenant=tenant, spec=spec,
                               submitted_at=now, updated_at=now,
                               max_requeues=self.max_requeues,
                               max_crashes=self.max_crashes,
                               trace_id=trace_id, span_id=span_id)
            self._persist(record)
            self._jobs[record.id] = record
            REGISTRY.counter("service.jobs.accepted").inc()
            return record

    def claim(self, worker: str) -> JobRecord | None:
        """Lease the oldest queued job to ``worker`` (FIFO), or ``None``.

        The lease is durable before the record is returned, so a claim
        acknowledged to a worker survives a crash as ``leased`` and is
        requeued by recovery -- never silently dropped.
        """
        with self._lock:
            fault_point("service.lease", worker=worker)
            queued = [r for r in self._jobs.values() if r.state == "queued"]
            if not queued:
                return None
            record = min(queued, key=lambda r: (r.submitted_at, r.id))
            with self._rollback_on_failure(record):
                now = self.clock()
                # How long the job sat queued since it last became
                # queued (submit or requeue persisted updated_at then).
                # Rides the lease so the worker can emit a queue.wait
                # span without re-deriving queue history.
                queued_for = max(0.0, now - record.updated_at)
                record.transition("leased")
                record.attempts += 1
                record.lease = {
                    "worker": worker,
                    "expires_at": now + self.lease_seconds,
                    "queued_for": queued_for}
                self._persist(record)
            return record

    def start(self, job_id: str) -> JobRecord:
        """Mark a leased job running; journals ``start`` once durable."""
        with self._lock:
            record = self._require(job_id)
            with self._rollback_on_failure(record):
                record.transition("running")
                self._persist(record)
            self._journal("start", record)
            return record

    def heartbeat(self, job_id: str) -> JobRecord:
        """Extend the lease of an in-flight job."""
        with self._lock:
            record = self._require(job_id)
            if record.lease is None:
                raise JobStateError(
                    f"job {job_id!r} holds no lease to heartbeat "
                    f"(state {record.state!r})", job_id=job_id)
            with self._rollback_on_failure(record):
                record.lease["expires_at"] = \
                    self.clock() + self.lease_seconds
                self._persist(record)
            return record

    def complete(self, job_id: str, result: dict[str, Any]) -> JobRecord:
        """Terminal success; journals ``done`` once durable."""
        with self._lock:
            record = self._require(job_id)
            with self._rollback_on_failure(record):
                record.transition("done")
                record.lease = None
                record.result = result
                self._persist(record)
            self._journal("done", record, digest=result.get("digest"))
            REGISTRY.counter("service.jobs.completed").inc()
            return record

    def fail(self, job_id: str, error: dict[str, Any]) -> JobRecord:
        """Terminal deterministic failure (the *job* failed, not the
        service -- e.g. every ladder rung gave up on the circuit)."""
        with self._lock:
            record = self._require(job_id)
            with self._rollback_on_failure(record):
                record.transition("failed")
                record.lease = None
                record.error = error
                self._persist(record)
            self._journal("done", record, outcome="failed")
            REGISTRY.counter("service.jobs.failed").inc()
            return record

    def requeue(self, job_id: str, reason: str) -> JobRecord:
        """Budgeted requeue after an infrastructure failure."""
        with self._lock:
            return self._requeue_locked(self._require(job_id), reason)

    def record_crash(self, job_id: str,
                     evidence: dict[str, Any]) -> JobRecord:
        """A worker died executing this job; requeue or quarantine.

        Poison-job detection: worker deaths (a sandboxed subprocess
        that segfaulted, blew its memory rlimit, or hung past the
        watchdog) consume the *crash* budget, not the requeue budget --
        flaky infrastructure and poison input are different diagnoses
        and must exhaust different budgets, so a quarantine verdict
        names the right one.  ``evidence`` (fault kind, exit status,
        stderr tail, elapsed seconds) is kept on the record, bounded to
        the last ``max_crashes`` reports, so a quarantined job carries
        its own post-mortem.
        """
        with self._lock:
            record = self._require(job_id)
            with self._rollback_on_failure(record):
                record.crashes += 1
                record.crash_evidence = (
                    record.crash_evidence + [dict(evidence)]
                )[-max(1, record.max_crashes):]
                record.lease = None
                if record.crashes >= record.max_crashes:
                    record.transition("quarantined")
                    record.error = {
                        "message": f"job killed its worker "
                                   f"{record.crashes} times (budget "
                                   f"{record.max_crashes}); quarantined "
                                   f"as poison",
                        "crashes": record.crashes,
                        "evidence": [dict(e) for e in
                                     record.crash_evidence]}
                    self._persist(record)
                    REGISTRY.counter("service.jobs.quarantined").inc()
                    REGISTRY.counter("service.jobs.poisoned").inc()
                    self._journal("quarantine", record,
                                  reason="crash-budget",
                                  crashes=record.crashes)
                    return record
                record.transition("queued")
                self._persist(record)
            self._journal(
                "requeue", record,
                reason=f"worker-crash:{evidence.get('kind', 'crash')}")
            REGISTRY.counter("service.jobs.crash_requeued").inc()
            return record

    def release(self, job_id: str) -> JobRecord:
        """Un-lease a job at graceful drain -- back to ``queued``
        *without* consuming requeue budget (nothing went wrong)."""
        with self._lock:
            record = self._require(job_id)
            with self._rollback_on_failure(record):
                record.transition("queued")
                record.lease = None
                self._persist(record)
            self._journal("requeue", record, reason="drain")
            return record

    def requeue_expired(self, now: float | None = None) -> list[str]:
        """Requeue every in-flight job whose lease expired; returns
        their ids.  Exactly-once per expiry: the lock serializes the
        scan and each requeue re-arms a fresh lease-free record."""
        with self._lock:
            if now is None:
                now = self.clock()
            expired = [r for r in self._jobs.values()
                       if r.state in ("leased", "running")
                       and r.lease_expired(now)]
            for record in expired:
                self._requeue_locked(record, reason="lease-expired")
            return [r.id for r in expired]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> Iterator[JobRecord]:
        with self._lock:
            return iter(list(self._jobs.values()))

    def counts(self) -> dict[str, int]:
        """Jobs per state (always includes every state, 0-filled)."""
        with self._lock:
            counts = {state: 0 for state in
                      ("queued", "leased", "running") + TERMINAL_STATES}
            for record in self._jobs.values():
                counts[record.state] = counts.get(record.state, 0) + 1
            return counts

    def depth(self) -> int:
        """Jobs not yet terminal (the admission queue bound)."""
        with self._lock:
            return sum(1 for r in self._jobs.values() if not r.terminal())

    def idle(self) -> bool:
        """True when every known job is terminal."""
        return self.depth() == 0

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self) -> dict[str, list[str]]:
        """Load the queue directory and repair interrupted work.

        Returns ``{"requeued": [...], "quarantined": [...],
        "corrupt": [...]}``.  Every ``leased``/``running`` record was
        held by a process that no longer exists (recovery runs before
        any worker starts), so each is requeued -- once -- against its
        budget.  Unreadable records are renamed ``.corrupt`` and listed.
        """
        with self._lock:
            requeued: list[str] = []
            quarantined: list[str] = []
            corrupt: list[str] = []
            for entry in sorted(os.listdir(self.jobs_dir)):
                if entry.startswith(".") or not entry.endswith(".json"):
                    # Dot-files are atomic-write temp debris a kill left
                    # behind -- by the protocol the real record is
                    # intact, so the debris is just deleted.
                    if entry.startswith("."):
                        try:
                            os.unlink(os.path.join(self.jobs_dir, entry))
                        except OSError:
                            pass
                    continue
                path = os.path.join(self.jobs_dir, entry)
                try:
                    record = load_job(path)
                except JobStateError:
                    os.replace(path, path + ".corrupt")
                    corrupt.append(entry)
                    REGISTRY.counter("service.jobs.corrupt").inc()
                    continue
                self._jobs[record.id] = record
                if record.state in ("leased", "running"):
                    before = record.requeues
                    self._requeue_locked(record, reason="recovery")
                    if record.state == "quarantined":
                        quarantined.append(record.id)
                    else:
                        requeued.append(record.id)
                        assert record.requeues == before + 1
            return {"requeued": requeued, "quarantined": quarantined,
                    "corrupt": corrupt}

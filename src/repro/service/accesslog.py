"""Structured JSONL access logs for the HTTP front door.

One line per completed request, machine-joinable to everything else the
observability plane emits: the ``trace`` field is the request's trace
id (the same id on the job record, the executions journal and every
span of the job), ``job`` is the job id a successful ``POST /jobs``
minted, and ``route`` is the normalized endpoint label used by the
``http.seconds.<route>`` SLO histograms.

Line schema (``docs/file_formats.md``)::

    {"ts": 1722849600.0, "method": "POST", "path": "/jobs",
     "route": "post_jobs", "status": 202, "dur_ms": 12.3,
     "remote": "127.0.0.1", "tenant": "default",
     "trace": "t-4f...", "job": "j-ab..."}

Appends are locked (handler threads share one writer), flushed per
line, and *advisory*: an unwritable log never fails a request.  A kill
can tear at most the final line; readers skip unparsable lines, same
contract as the executions journal.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any


class AccessLog:
    """Append-only JSONL request log shared by all handler threads."""

    def __init__(self, path: str | os.PathLike[str]):
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._closed = False

    def write(self, entry: dict[str, Any]) -> None:
        """Append one request line (drops ``None`` fields; never raises)."""
        compact = {key: value for key, value in entry.items()
                   if value is not None}
        try:
            line = json.dumps(compact, sort_keys=True,
                              separators=(",", ":")) + "\n"
        except (TypeError, ValueError):
            return
        with self._lock:
            if self._closed:
                return
            try:
                self._handle.write(line)
                self._handle.flush()
            except (OSError, ValueError):
                pass  # advisory: logging must never fail a request

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except (OSError, ValueError):
                pass
            self._handle.close()


def read_access_log(path: str | os.PathLike[str]) -> list[dict[str, Any]]:
    """All access-log entries in append order, skipping torn lines."""
    entries: list[dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn final line after a kill
                if isinstance(entry, dict):
                    entries.append(entry)
    except OSError:
        return []
    return entries

"""The service kill-loop: crash the service until the queue drains, then
prove nothing was lost, duplicated or silently wrong.

The harness seeds a queue directory with jobs offline, then repeatedly
launches ``repro-ser serve --drain-after-idle`` as a subprocess armed
(via ``REPRO_FAULT_PLAN``) with ``kill`` faults at ``service.persist``
-- every durable job-record write is a potential crash point, which
covers every lifecycle transition: admission persists, lease persists,
start/complete/fail persists, recovery's requeue persists.  Each launch
reseeds the plan (``seed + attempt``) so restarts die at different
points instead of livelocking on one.

A launch ends one of three ways: exit
:data:`~repro.faultplane.plan.KILL_EXIT_CODE` (injected kill -- restart
and let startup recovery repair the queue), exit 0 (the queue drained
idle -- stop), anything else (a real bug -- fail loudly).

Verification after the drain:

* **no lost jobs** -- every seeded job exists and is ``done``;
* **exactly-once completion** -- the execution journal holds at most
  one ``done`` per job, and no ``start`` after a ``done`` (a completed
  job was never re-executed);
* **digest parity** -- each job's result digest equals the clean
  in-process reference for the same spec
  (:func:`~repro.service.workers.execute_job` with no faults and no
  cache), i.e. crash recovery plus the warm shared cache changed
  *nothing* about the answer.

Run it directly (CI does, across several seeds)::

    PYTHONPATH=src python -m repro.service.killloop \\
        --circuits s13207 s15850.1 --scale 0.004 --seeds 0 1 2
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any

from ..errors import JobStateError
from ..faultplane.plan import ENV_PLAN, KILL_EXIT_CODE, FaultPlan, FaultSpec
from .jobs import TERMINAL_STATES, load_job
from .queue import JobQueue, read_journal
from .workers import ExecutionDefaults, execute_job

#: Generous per-launch wall-clock bound; a hung service is a failure.
LAUNCH_TIMEOUT = 600.0


@dataclass
class KillLoopResult:
    """Scorecard of one seeded kill-loop run."""

    seed: int
    launches: int = 0
    kills: int = 0
    jobs: int = 0
    requeues: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "launches": self.launches,
                "kills": self.kills, "jobs": self.jobs,
                "requeues": self.requeues, "ok": self.ok,
                "violations": list(self.violations)}


def job_specs(circuits: list[str], scale: float, frames: int,
              patterns: int, seed: int) -> list[dict[str, Any]]:
    """Fully explicit specs (every knob pinned) so the service-side and
    reference-side executions agree field-for-field."""
    return [{"circuit": name, "scale": scale, "seed": seed,
             "frames": frames, "patterns": patterns}
            for name in circuits]


def seed_queue(root: str, specs: list[dict[str, Any]],
               max_requeues: int) -> dict[str, dict[str, Any]]:
    """Offline-enqueue the jobs; returns ``{job id: spec}``."""
    queue = JobQueue(root, max_requeues=max_requeues)
    return {queue.submit(spec).id: spec for spec in specs}


def reference_digests(specs: list[dict[str, Any]],
                      scale: float) -> dict[str, str]:
    """Clean in-process digests, keyed by circuit name.

    No injector, no cache: the plainest possible execution of each
    spec, the oracle every crash-recovered service result must match.
    """
    defaults = ExecutionDefaults(scale=scale)
    results = {}
    for spec in specs:
        result = execute_job(spec, defaults)
        results[result["name"]] = result["digest"]
    return results


def kill_plan(seed: int, kill_prob: float, trigger: int) -> FaultPlan:
    """Kills at a durable job-record write, with probability.

    ``trigger`` escalates with the launch number: the fault only
    becomes eligible on the Nth persist, so launch N is guaranteed to
    survive at least N-1 persists.  That makes convergence *monotone*:
    a job needs a few consecutive clean persists (claim -> start ->
    complete) to reach a terminal state, and a fixed trigger of 1 at
    high probability would tear that chain on every single launch --
    measured livelock, not a hypothetical.
    """
    return FaultPlan(seed=seed, faults=[
        FaultSpec(site="service.persist", kind="kill", trigger=trigger,
                  arms=1, probability=kill_prob)])


def serve_argv(root: str, *, pool: int, scale: float,
               max_requeues: int) -> list[str]:
    return [sys.executable, "-m", "repro.cli", "serve", "--root", root,
            "--port", "0", "--pool", str(pool), "--scale", str(scale),
            "--max-requeues", str(max_requeues), "--lease-seconds", "30",
            "--drain-after-idle", "--idle-grace", "1.0"]


def verify(root: str, seeded: dict[str, dict[str, Any]],
           references: dict[str, str], result: KillLoopResult) -> None:
    """Check the three invariants; appends violations to ``result``.

    Reads the job records straight off disk (no
    :meth:`~repro.service.queue.JobQueue.recover`): the verifier must
    inspect the evidence, not repair it.
    """
    records = {}
    jobs_dir = os.path.join(root, "jobs")
    for entry in sorted(os.listdir(jobs_dir)):
        if entry.startswith("."):
            continue  # atomic-write temp debris; harmless by protocol
        if entry.endswith(".corrupt"):
            result.violations.append(
                f"torn job record survived the atomic-write protocol: "
                f"{entry}")
            continue
        if not entry.endswith(".json"):
            continue
        try:
            record = load_job(os.path.join(jobs_dir, entry))
        except JobStateError as exc:
            result.violations.append(f"unreadable job record: {exc}")
            continue
        records[record.id] = record

    for job_id, spec in seeded.items():
        record = records.get(job_id)
        if record is None:
            result.violations.append(f"job {job_id} was lost")
            continue
        result.requeues += record.requeues
        if record.state != "done":
            result.violations.append(
                f"job {job_id} ({spec.get('circuit')}) ended "
                f"{record.state!r}, not done: {record.error}")
            continue
        name = record.result["name"]
        digest = record.result["digest"]
        expected = references.get(name)
        if digest != expected:
            result.violations.append(
                f"job {job_id} ({name}) digest {digest} != clean "
                f"reference {expected}")
    for job_id, record in records.items():
        if job_id not in seeded:
            result.violations.append(f"phantom job {job_id} appeared")
        if record.state not in TERMINAL_STATES:
            result.violations.append(
                f"job {job_id} left non-terminal ({record.state})")

    done_at: dict[str, int] = {}
    for index, event in enumerate(read_journal(root)):
        job_id, kind = str(event.get("job")), event.get("event")
        if kind == "done":
            if job_id in done_at:
                result.violations.append(
                    f"job {job_id} completed twice (journal)")
            done_at.setdefault(job_id, index)
        elif kind == "start" and job_id in done_at:
            result.violations.append(
                f"job {job_id} re-executed after completion (journal)")


def run_kill_loop(root: str, circuits: list[str], *, seed: int = 0,
                  scale: float = 0.004, frames: int = 2,
                  patterns: int = 64, pool: int = 2,
                  kill_prob: float = 0.35, max_launches: int = 40,
                  max_requeues: int = 100,
                  verbose: bool = False) -> KillLoopResult:
    """One seeded kill-loop over a fresh queue directory.

    ``max_requeues`` is deliberately huge: the production budget guards
    against requeue livelock, but here every crash is *injected* and
    ``max_launches`` already bounds the loop -- quarantining a job for
    surviving many induced crashes would fail the run for doing its job.
    """
    result = KillLoopResult(seed=seed)
    os.makedirs(root, exist_ok=True)
    specs = job_specs(circuits, scale, frames, patterns, seed)
    seeded = seed_queue(root, specs, max_requeues)
    result.jobs = len(seeded)
    references = reference_digests(specs, scale)

    argv = serve_argv(root, pool=pool, scale=scale,
                      max_requeues=max_requeues)
    while result.launches < max_launches:
        result.launches += 1
        env = dict(os.environ)
        env[ENV_PLAN] = kill_plan(seed + result.launches, kill_prob,
                                  trigger=result.launches).to_json()
        if verbose:
            print(f"[killloop seed={seed}] launch {result.launches}",
                  file=sys.stderr, flush=True)
        proc = subprocess.run(argv, env=env, timeout=LAUNCH_TIMEOUT,
                              capture_output=not verbose)
        if proc.returncode == 0:
            break
        if proc.returncode != KILL_EXIT_CODE:
            stderr = b"" if verbose else proc.stderr
            result.violations.append(
                f"launch {result.launches} exited "
                f"{proc.returncode}: {stderr.decode()[-400:]}")
            return result
        result.kills += 1
    else:
        result.violations.append(
            f"queue did not drain within {max_launches} launches")
        return result

    verify(root, seeded, references, result)
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="service kill-loop chaos harness")
    parser.add_argument("--circuits", nargs="+",
                        default=["s13207", "s15850.1"])
    parser.add_argument("--seeds", nargs="+", type=int, default=[0])
    parser.add_argument("--scale", type=float, default=0.004)
    parser.add_argument("--frames", type=int, default=2)
    parser.add_argument("--patterns", type=int, default=64)
    parser.add_argument("--pool", type=int, default=2)
    parser.add_argument("--kill-prob", type=float, default=0.35)
    parser.add_argument("--max-launches", type=int, default=40)
    parser.add_argument("--workdir", default=None,
                        help="parent of the per-seed queue dirs "
                             "(default: a fresh temp dir)")
    parser.add_argument("--json", default=None,
                        help="write the scorecards here as JSON")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    workdir = args.workdir
    if workdir is None:
        import tempfile

        workdir = tempfile.mkdtemp(prefix="repro-killloop-")
    print(f"kill-loop working in {workdir}", file=sys.stderr)

    cards = []
    for seed in args.seeds:
        started = time.monotonic()
        card = run_kill_loop(
            os.path.join(workdir, f"seed-{seed}"), args.circuits,
            seed=seed, scale=args.scale, frames=args.frames,
            patterns=args.patterns, pool=args.pool,
            kill_prob=args.kill_prob, max_launches=args.max_launches,
            verbose=args.verbose)
        cards.append(card)
        status = "ok" if card.ok else "FAIL"
        print(f"seed {seed}: {status}  launches={card.launches} "
              f"kills={card.kills} requeues={card.requeues} "
              f"jobs={card.jobs} ({time.monotonic() - started:.1f}s)")
        for violation in card.violations:
            print(f"  violation: {violation}", file=sys.stderr)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump([c.to_dict() for c in cards], handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
    return 0 if all(card.ok for card in cards) else 1


if __name__ == "__main__":
    sys.exit(main())

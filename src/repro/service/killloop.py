"""The service kill-loop: crash the service until the queue drains, then
prove nothing was lost, duplicated or silently wrong.

The harness seeds a queue directory with jobs offline, then repeatedly
launches ``repro-ser serve --drain-after-idle`` as a subprocess armed
(via ``REPRO_FAULT_PLAN``) with ``kill`` faults at ``service.persist``
-- every durable job-record write is a potential crash point, which
covers every lifecycle transition: admission persists, lease persists,
start/complete/fail persists, recovery's requeue persists.  Each launch
reseeds the plan (``seed + attempt``) so restarts die at different
points instead of livelocking on one.

A launch ends one of three ways: exit
:data:`~repro.faultplane.plan.KILL_EXIT_CODE` (injected kill -- restart
and let startup recovery repair the queue), exit 0 (the queue drained
idle -- stop), anything else (a real bug -- fail loudly).

Verification after the drain:

* **no lost jobs** -- every seeded job exists and is ``done``;
* **exactly-once completion** -- the execution journal holds at most
  one ``done`` per job, and no ``start`` after a ``done`` (a completed
  job was never re-executed);
* **digest parity** -- each job's result digest equals the clean
  in-process reference for the same spec
  (:func:`~repro.service.workers.execute_job` with no faults and no
  cache), i.e. crash recovery plus the warm shared cache changed
  *nothing* about the answer.

**Worker-kill mode** (``--mode worker``) turns the gun on individual
workers instead of the server: the service runs once, in process
isolation, while ``segfault`` faults at ``service.worker.execute``
SIGSEGV the sandboxed worker subprocesses mid-job.  The service itself
must survive every one of those deaths, classify them, and converge --
plus one deliberately **poison** job (an inline netlist named
``poison``, armed with an always-fire fault at the name-keyed site
``service.worker.job.poison``) that kills its worker on every attempt
and must land in ``quarantined`` with crash evidence after exactly its
crash budget, while the unrelated jobs complete with clean digests.

Run it directly (CI does, across several seeds)::

    PYTHONPATH=src python -m repro.service.killloop \\
        --circuits s13207 s15850.1 --scale 0.004 --seeds 0 1 2
    PYTHONPATH=src python -m repro.service.killloop --mode worker \\
        --circuits s27 s208.1 --seeds 0 1
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any

from ..errors import JobStateError
from ..faultplane.plan import ENV_PLAN, KILL_EXIT_CODE, FaultPlan, FaultSpec
from .jobs import TERMINAL_STATES, load_job
from .queue import JobQueue, read_journal
from .workers import ExecutionDefaults, execute_job

#: Generous per-launch wall-clock bound; a hung service is a failure.
LAUNCH_TIMEOUT = 600.0


#: The poison job's inline netlist (tiny but valid) and canonical name
#: -- the name keys the always-fire fault site
#: ``service.worker.job.poison``.
POISON_NAME = "poison"
POISON_NETLIST = ("INPUT(a)\nOUTPUT(y)\ns1 = DFF(g1)\n"
                  "g1 = NAND(a, s1)\ny = NOT(s1)\n")


@dataclass
class KillLoopResult:
    """Scorecard of one seeded kill-loop run."""

    seed: int
    mode: str = "server"
    launches: int = 0
    kills: int = 0
    jobs: int = 0
    requeues: int = 0
    #: Worker-kill mode: total worker-process deaths absorbed and jobs
    #: that ended ``quarantined`` (the poison job, and only it).
    worker_crashes: int = 0
    quarantined: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "mode": self.mode,
                "launches": self.launches,
                "kills": self.kills, "jobs": self.jobs,
                "requeues": self.requeues,
                "worker_crashes": self.worker_crashes,
                "quarantined": self.quarantined, "ok": self.ok,
                "violations": list(self.violations)}


def job_specs(circuits: list[str], scale: float, frames: int,
              patterns: int, seed: int) -> list[dict[str, Any]]:
    """Fully explicit specs (every knob pinned) so the service-side and
    reference-side executions agree field-for-field."""
    return [{"circuit": name, "scale": scale, "seed": seed,
             "frames": frames, "patterns": patterns}
            for name in circuits]


def seed_queue(root: str, specs: list[dict[str, Any]],
               max_requeues: int,
               max_crashes: int = 3) -> dict[str, dict[str, Any]]:
    """Offline-enqueue the jobs; returns ``{job id: spec}``."""
    queue = JobQueue(root, max_requeues=max_requeues,
                     max_crashes=max_crashes)
    return {queue.submit(spec).id: spec for spec in specs}


def reference_digests(specs: list[dict[str, Any]],
                      scale: float) -> dict[str, str]:
    """Clean in-process digests, keyed by circuit name.

    No injector, no cache: the plainest possible execution of each
    spec, the oracle every crash-recovered service result must match.
    """
    defaults = ExecutionDefaults(scale=scale)
    results = {}
    for spec in specs:
        result = execute_job(spec, defaults)
        results[result["name"]] = result["digest"]
    return results


def kill_plan(seed: int, kill_prob: float, trigger: int) -> FaultPlan:
    """Kills at a durable job-record write, with probability.

    ``trigger`` escalates with the launch number: the fault only
    becomes eligible on the Nth persist, so launch N is guaranteed to
    survive at least N-1 persists.  That makes convergence *monotone*:
    a job needs a few consecutive clean persists (claim -> start ->
    complete) to reach a terminal state, and a fixed trigger of 1 at
    high probability would tear that chain on every single launch --
    measured livelock, not a hypothetical.
    """
    return FaultPlan(seed=seed, faults=[
        FaultSpec(site="service.persist", kind="kill", trigger=trigger,
                  arms=1, probability=kill_prob)])


def worker_plan(seed: int, crash_prob: float) -> FaultPlan:
    """SIGSEGVs sandboxed workers; always kills the poison job's worker.

    Each sandbox child reinstalls this plan with a per-(job, attempt)
    derived seed (:func:`~repro.faultplane.plan.derive_job_plan`), so
    the ``service.worker.execute`` fault fires independently per
    attempt -- a job that crashed once is not doomed to crash forever.
    The poison fault needs no such decorrelation: probability 1.0 fires
    under every seed, which is the point.
    """
    return FaultPlan(seed=seed, faults=[
        FaultSpec(site="service.worker.execute", kind="segfault",
                  trigger=1, arms=1, probability=crash_prob),
        FaultSpec(site=f"service.worker.job.{POISON_NAME}",
                  kind="segfault", trigger=1, arms=1, probability=1.0)])


def serve_argv(root: str, *, pool: int, scale: float,
               max_requeues: int, isolation: str = "thread",
               max_crashes: int | None = None) -> list[str]:
    argv = [sys.executable, "-m", "repro.cli", "serve", "--root", root,
            "--port", "0", "--pool", str(pool), "--scale", str(scale),
            "--max-requeues", str(max_requeues), "--lease-seconds", "30",
            "--drain-after-idle", "--idle-grace", "1.0",
            "--isolation", isolation]
    if max_crashes is not None:
        argv += ["--max-crashes", str(max_crashes)]
    return argv


def verify(root: str, seeded: dict[str, dict[str, Any]],
           references: dict[str, str], result: KillLoopResult,
           poison_ids: frozenset[str] = frozenset()) -> None:
    """Check the three invariants; appends violations to ``result``.

    Jobs in ``poison_ids`` invert the success criterion: they must end
    ``quarantined`` with their crash budget spent and crash evidence
    attached -- a poison job that *completed* (or requeued forever)
    is the violation.

    Reads the job records straight off disk (no
    :meth:`~repro.service.queue.JobQueue.recover`): the verifier must
    inspect the evidence, not repair it.
    """
    records = {}
    jobs_dir = os.path.join(root, "jobs")
    for entry in sorted(os.listdir(jobs_dir)):
        if entry.startswith("."):
            continue  # atomic-write temp debris; harmless by protocol
        if entry.endswith(".corrupt"):
            result.violations.append(
                f"torn job record survived the atomic-write protocol: "
                f"{entry}")
            continue
        if not entry.endswith(".json"):
            continue
        try:
            record = load_job(os.path.join(jobs_dir, entry))
        except JobStateError as exc:
            result.violations.append(f"unreadable job record: {exc}")
            continue
        records[record.id] = record

    for job_id, spec in seeded.items():
        record = records.get(job_id)
        if record is None:
            result.violations.append(f"job {job_id} was lost")
            continue
        result.requeues += record.requeues
        result.worker_crashes += record.crashes
        if record.state == "quarantined":
            result.quarantined += 1
        if job_id in poison_ids:
            if record.state != "quarantined":
                result.violations.append(
                    f"poison job {job_id} ended {record.state!r}, "
                    f"expected quarantined")
            elif record.crashes < record.max_crashes:
                result.violations.append(
                    f"poison job {job_id} quarantined after only "
                    f"{record.crashes} crashes (budget "
                    f"{record.max_crashes})")
            elif not record.crash_evidence:
                result.violations.append(
                    f"poison job {job_id} quarantined without crash "
                    f"evidence")
            continue
        if record.state != "done":
            result.violations.append(
                f"job {job_id} ({spec.get('circuit')}) ended "
                f"{record.state!r}, not done: {record.error}")
            continue
        name = record.result["name"]
        digest = record.result["digest"]
        expected = references.get(name)
        if digest != expected:
            result.violations.append(
                f"job {job_id} ({name}) digest {digest} != clean "
                f"reference {expected}")
    for job_id, record in records.items():
        if job_id not in seeded:
            result.violations.append(f"phantom job {job_id} appeared")
        if record.state not in TERMINAL_STATES:
            result.violations.append(
                f"job {job_id} left non-terminal ({record.state})")

    done_at: dict[str, int] = {}
    for index, event in enumerate(read_journal(root)):
        job_id, kind = str(event.get("job")), event.get("event")
        if kind == "done":
            if job_id in done_at:
                result.violations.append(
                    f"job {job_id} completed twice (journal)")
            done_at.setdefault(job_id, index)
        elif kind == "start" and job_id in done_at:
            result.violations.append(
                f"job {job_id} re-executed after completion (journal)")


def run_kill_loop(root: str, circuits: list[str], *, seed: int = 0,
                  scale: float = 0.004, frames: int = 2,
                  patterns: int = 64, pool: int = 2,
                  kill_prob: float = 0.35, max_launches: int = 40,
                  max_requeues: int = 100,
                  verbose: bool = False) -> KillLoopResult:
    """One seeded kill-loop over a fresh queue directory.

    ``max_requeues`` is deliberately huge: the production budget guards
    against requeue livelock, but here every crash is *injected* and
    ``max_launches`` already bounds the loop -- quarantining a job for
    surviving many induced crashes would fail the run for doing its job.
    """
    result = KillLoopResult(seed=seed)
    os.makedirs(root, exist_ok=True)
    specs = job_specs(circuits, scale, frames, patterns, seed)
    seeded = seed_queue(root, specs, max_requeues)
    result.jobs = len(seeded)
    references = reference_digests(specs, scale)

    argv = serve_argv(root, pool=pool, scale=scale,
                      max_requeues=max_requeues)
    while result.launches < max_launches:
        result.launches += 1
        env = dict(os.environ)
        env[ENV_PLAN] = kill_plan(seed + result.launches, kill_prob,
                                  trigger=result.launches).to_json()
        if verbose:
            print(f"[killloop seed={seed}] launch {result.launches}",
                  file=sys.stderr, flush=True)
        proc = subprocess.run(argv, env=env, timeout=LAUNCH_TIMEOUT,
                              capture_output=not verbose)
        if proc.returncode == 0:
            break
        if proc.returncode != KILL_EXIT_CODE:
            stderr = b"" if verbose else proc.stderr
            result.violations.append(
                f"launch {result.launches} exited "
                f"{proc.returncode}: {stderr.decode()[-400:]}")
            return result
        result.kills += 1
    else:
        result.violations.append(
            f"queue did not drain within {max_launches} launches")
        return result

    verify(root, seeded, references, result)
    return result


def run_worker_kill_loop(root: str, circuits: list[str], *, seed: int = 0,
                         scale: float = 0.004, frames: int = 2,
                         patterns: int = 64, pool: int = 2,
                         crash_prob: float = 0.35,
                         max_requeues: int = 100,
                         max_crashes: int = 100,
                         poison_budget: int = 3,
                         verbose: bool = False) -> KillLoopResult:
    """One seeded worker-kill run: one launch, many worker deaths.

    The service runs *once* in process isolation; injected ``segfault``
    faults SIGSEGV its sandboxed worker subprocesses, never the server.
    Legitimate jobs carry an effectively unlimited crash budget
    (``max_crashes``) -- every crash here is induced, so quarantining a
    legitimate job for surviving them would fail the run for doing its
    job -- while the seeded poison job carries the *production* budget
    (``poison_budget``) and must spend it and land in ``quarantined``.
    """
    result = KillLoopResult(seed=seed, mode="worker")
    os.makedirs(root, exist_ok=True)
    specs = job_specs(circuits, scale, frames, patterns, seed)
    seeded = seed_queue(root, specs, max_requeues,
                        max_crashes=max_crashes)
    poison_spec = {"netlist": POISON_NETLIST, "name": POISON_NAME,
                   "frames": frames, "patterns": min(patterns, 8),
                   "seed": seed}
    poison_queue = JobQueue(root, max_requeues=max_requeues,
                            max_crashes=poison_budget)
    poison_id = poison_queue.submit(poison_spec).id
    seeded[poison_id] = poison_spec
    result.jobs = len(seeded)
    references = reference_digests(specs, scale)

    argv = serve_argv(root, pool=pool, scale=scale,
                      max_requeues=max_requeues, isolation="process",
                      max_crashes=max_crashes)
    env = dict(os.environ)
    env[ENV_PLAN] = worker_plan(seed, crash_prob).to_json()
    if verbose:
        print(f"[killloop seed={seed} mode=worker] single launch",
              file=sys.stderr, flush=True)
    result.launches = 1
    proc = subprocess.run(argv, env=env, timeout=LAUNCH_TIMEOUT,
                          capture_output=not verbose)
    if proc.returncode != 0:
        # Worker deaths must never take the server with them; any
        # non-zero exit here -- including an injected-kill code -- is
        # exactly the containment failure this mode exists to catch.
        stderr = b"" if verbose else proc.stderr
        result.violations.append(
            f"service exited {proc.returncode} (worker faults must not "
            f"kill the server): {stderr.decode()[-400:]}")
        return result

    verify(root, seeded, references, result,
           poison_ids=frozenset({poison_id}))
    result.kills = result.worker_crashes
    if result.worker_crashes < poison_budget:
        result.violations.append(
            f"only {result.worker_crashes} worker crashes recorded; the "
            f"poison job alone should have caused {poison_budget}")
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="service kill-loop chaos harness")
    parser.add_argument("--mode", choices=("server", "worker"),
                        default="server",
                        help="server: SIGKILL the whole service at "
                             "persist points across restarts; worker: "
                             "one launch in process isolation, SIGSEGV "
                             "individual sandboxed workers + a poison "
                             "job that must be quarantined")
    parser.add_argument("--circuits", nargs="+",
                        default=["s13207", "s15850.1"])
    parser.add_argument("--seeds", nargs="+", type=int, default=[0])
    parser.add_argument("--scale", type=float, default=0.004)
    parser.add_argument("--frames", type=int, default=2)
    parser.add_argument("--patterns", type=int, default=64)
    parser.add_argument("--pool", type=int, default=2)
    parser.add_argument("--kill-prob", type=float, default=0.35)
    parser.add_argument("--crash-prob", type=float, default=0.35,
                        help="worker mode: per-attempt probability a "
                             "sandboxed worker is SIGSEGVed")
    parser.add_argument("--poison-budget", type=int, default=3,
                        help="worker mode: the poison job's crash "
                             "budget (quarantined after this many)")
    parser.add_argument("--max-launches", type=int, default=40)
    parser.add_argument("--workdir", default=None,
                        help="parent of the per-seed queue dirs "
                             "(default: a fresh temp dir)")
    parser.add_argument("--json", default=None,
                        help="write the scorecards here as JSON")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    workdir = args.workdir
    if workdir is None:
        import tempfile

        workdir = tempfile.mkdtemp(prefix="repro-killloop-")
    print(f"kill-loop working in {workdir}", file=sys.stderr)

    cards = []
    for seed in args.seeds:
        started = time.monotonic()
        if args.mode == "worker":
            card = run_worker_kill_loop(
                os.path.join(workdir, f"seed-{seed}"), args.circuits,
                seed=seed, scale=args.scale, frames=args.frames,
                patterns=args.patterns, pool=args.pool,
                crash_prob=args.crash_prob,
                poison_budget=args.poison_budget,
                verbose=args.verbose)
        else:
            card = run_kill_loop(
                os.path.join(workdir, f"seed-{seed}"), args.circuits,
                seed=seed, scale=args.scale, frames=args.frames,
                patterns=args.patterns, pool=args.pool,
                kill_prob=args.kill_prob,
                max_launches=args.max_launches,
                verbose=args.verbose)
        cards.append(card)
        status = "ok" if card.ok else "FAIL"
        extra = (f" worker_crashes={card.worker_crashes} "
                 f"quarantined={card.quarantined}"
                 if card.mode == "worker" else "")
        print(f"seed {seed} [{card.mode}]: {status}  "
              f"launches={card.launches} kills={card.kills} "
              f"requeues={card.requeues} jobs={card.jobs}{extra} "
              f"({time.monotonic() - started:.1f}s)")
        for violation in card.violations:
            print(f"  violation: {violation}", file=sys.stderr)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump([c.to_dict() for c in cards], handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
    return 0 if all(card.ok for card in cards) else 1


if __name__ == "__main__":
    sys.exit(main())

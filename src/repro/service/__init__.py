"""Retiming-as-a-service: a durable job queue behind a small HTTP API.

The service turns the resilient Table I flow
(:func:`repro.runtime.suite.optimize_resilient`) into a long-running
process: clients ``POST`` retiming jobs (a Table I circuit name or an
inline ``.bench`` netlist), a persistent worker pool executes them with
a warm shared analysis cache, and every job state transition is durably
persisted *before* it is acknowledged -- killing the service at any
point loses no accepted job and completes none twice.

Layering (each module imports only downward)::

    app.py        service wiring: config, signals, drain, monitor loop
      api.py      HTTP front end (stdlib http.server, threading)
      workers.py  worker pool: claim -> run -> complete
        admission.py   validation, queue bound, per-tenant token buckets
        queue.py       durable FIFO job queue + execution journal
          jobs.py      job records: states, transitions, atomic persist

The chaos companion :mod:`repro.service.killloop` restarts the service
under ``kill`` fault plans and proves the exactly-once-completion and
digest-parity claims.  See ``docs/service.md``.
"""

from .admission import AdmissionController, TokenBucket
from .jobs import (JOB_STATES, TERMINAL_STATES, JobRecord, job_result_digest,
                   load_job, save_job)
from .queue import JobQueue, read_journal

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobRecord",
    "job_result_digest",
    "load_job",
    "save_job",
    "JobQueue",
    "read_journal",
]

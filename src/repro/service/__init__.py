"""Retiming-as-a-service: a durable job queue behind a small HTTP API.

The service turns the resilient Table I flow
(:func:`repro.runtime.suite.optimize_resilient`) into a long-running
process: clients ``POST`` retiming jobs (a Table I circuit name or an
inline ``.bench`` netlist), a persistent worker pool executes them with
a warm shared analysis cache, and every job state transition is durably
persisted *before* it is acknowledged -- killing the service at any
point loses no accepted job and completes none twice.

Two isolation modes.  ``thread`` (default) runs jobs on the worker
threads themselves -- fastest, one warm in-memory cache.  ``process``
hands each job to a sandboxed subprocess (:mod:`repro.service.sandbox`)
with ``resource.setrlimit`` memory/CPU budgets and a wall-clock
watchdog, so a job that segfaults, hangs or eats memory kills *its
subprocess*, not the service; a job that does it repeatedly is
quarantined as poison with the crash evidence attached.  The
:mod:`repro.service.supervisor` owns worker lifecycle either way:
dead workers restart with seeded backoff behind a circuit breaker.

Layering (each module imports only downward)::

    app.py        service wiring: config, signals, drain, monitor loop
      api.py      HTTP front end (stdlib http.server, threading)
      supervisor.py  self-healing: restart dead workers, circuit breaker
      workers.py  worker pool: claim -> run -> complete
        sandbox.py     process isolation: rlimits, watchdog, classify
        admission.py   validation, queue/memory bounds, token buckets
        queue.py       durable FIFO job queue + execution journal
          jobs.py      job records: states, transitions, atomic persist

The chaos companion :mod:`repro.service.killloop` kills the service --
or, in worker-kill mode, individual sandboxed workers -- under fault
plans and proves the exactly-once-completion and digest-parity claims.
See ``docs/service.md``.
"""

from .admission import AdmissionController, TokenBucket, resident_memory_mb
from .jobs import (JOB_STATES, TERMINAL_STATES, JobRecord, job_result_digest,
                   load_job, save_job)
from .queue import JobQueue, read_journal
from .sandbox import SandboxLimits, SandboxOutcome, run_sandboxed
from .supervisor import Supervisor

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "resident_memory_mb",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobRecord",
    "job_result_digest",
    "load_job",
    "save_job",
    "JobQueue",
    "read_journal",
    "SandboxLimits",
    "SandboxOutcome",
    "run_sandboxed",
    "Supervisor",
]

"""The self-healing supervisor: worker lifecycle ownership.

The :class:`~repro.service.workers.WorkerPool` executes jobs; the
supervisor keeps the pool *alive*.  One daemon thread sweeps on a fixed
interval and, each sweep:

1. detects worker threads that died (an escaped exception, an injected
   ``kill`` fault that only took down a thread) and heartbeat-thread
   death, via the pool's liveness accessors;
2. restarts each casualty after a seeded, jittered exponential-backoff
   delay (reusing :func:`~repro.runtime.executor.backoff_delay` -- the
   same decorrelated-retry policy the pipeline uses, so a fixed seed
   fixes the whole restart schedule);
3. trips a **circuit breaker** when restarts churn: more than
   ``breaker_threshold`` restarts inside ``breaker_window`` seconds
   opens the breaker, which suspends restarts for
   ``breaker_cooldown`` seconds, then goes *half-open* -- one
   probationary restart is allowed; if the revived worker survives a
   full sweep the breaker closes, if it dies again the breaker re-opens.

The breaker is the honesty mechanism: a pool whose workers die as fast
as they are revived is not healthy, and pretending otherwise by
restarting in a hot loop just burns CPU and hides the pathology.  An
open breaker is surfaced through :meth:`Supervisor.healthy` (wired into
``/readyz``, so load balancers stop routing) and through the
``service.supervisor.*`` metrics on ``/metrics``.

Worker deaths never lose jobs regardless of what the supervisor does:
a dead worker's in-flight job is lease-recovered by the queue monitor,
and in process-isolation mode the job outcome was already classified by
the sandbox before the thread could die.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from ..runtime.executor import backoff_delay, backoff_rng
from ..telemetry.metrics import REGISTRY
from .workers import WorkerPool

#: Breaker states, in escalation order.
BREAKER_STATES = ("closed", "open", "half-open")


class Supervisor:
    """Detect dead workers, restart with backoff, break the circuit.

    Parameters
    ----------
    pool:
        The worker pool whose lifecycle this supervisor owns.
    seed:
        Seeds the restart-jitter RNG; a fixed seed reproduces the exact
        restart schedule (chaos runs replay deterministically).
    check_interval:
        Seconds between liveness sweeps.
    base_backoff:
        Base delay of the per-worker exponential backoff.  Attempt ``n``
        waits ``~base * 2**n`` (jittered, capped) before the restart.
    breaker_threshold / breaker_window:
        Open the breaker after more than ``breaker_threshold`` restarts
        within a rolling ``breaker_window`` seconds.
    breaker_cooldown:
        Seconds an open breaker suspends restarts before going
        half-open.
    """

    def __init__(self, pool: WorkerPool, *, seed: int = 0,
                 check_interval: float = 0.25,
                 base_backoff: float = 0.05,
                 breaker_threshold: int = 5,
                 breaker_window: float = 30.0,
                 breaker_cooldown: float = 5.0):
        self.pool = pool
        self.seed = int(seed)
        self.check_interval = float(check_interval)
        self.base_backoff = float(base_backoff)
        self.breaker_threshold = max(1, int(breaker_threshold))
        self.breaker_window = float(breaker_window)
        self.breaker_cooldown = float(breaker_cooldown)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._restart_counts: dict[str, int] = {}  # consecutive, per worker
        self._restart_times: list[float] = []      # rolling window, breaker
        self._restarts_total = 0
        self._breaker = "closed"
        self._breaker_opened_at: float | None = None
        self._probation: str | None = None  # worker revived under half-open

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._thread = threading.Thread(target=self._run,
                                        name="supervisor", daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)

    # ------------------------------------------------------------------
    # Observation (read by /healthz, /readyz and /metrics)
    # ------------------------------------------------------------------
    def breaker_state(self) -> str:
        with self._lock:
            return self._breaker

    def restarts(self) -> int:
        with self._lock:
            return self._restarts_total

    def healthy(self) -> bool:
        """True when the pool can make progress *and* is not churning.

        An open breaker is unhealthy by definition: the supervisor has
        judged that restarts are not sticking.  Half-open counts as
        healthy-enough -- a probe is in flight and the pool has live
        workers to show for it.
        """
        if self.breaker_state() == "open":
            return False
        return self.pool.alive_workers() > 0 and self.pool.heartbeat_alive()

    def state(self) -> dict[str, Any]:
        """One structured snapshot for the health endpoints."""
        with self._lock:
            snapshot = {
                "breaker": self._breaker,
                "restarts": self._restarts_total,
                "restart_counts": dict(self._restart_counts),
            }
        snapshot.update(self.pool.liveness())
        snapshot["healthy"] = self.healthy()
        return snapshot

    # ------------------------------------------------------------------
    # The sweep loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.check_interval):
            try:
                self.sweep()
            except Exception:
                # The supervisor is the last line of defence; it must
                # never die to an exception it was built to absorb.
                REGISTRY.counter("service.supervisor.errors").inc()

    def sweep(self, now: float | None = None) -> list[str]:
        """One liveness pass; returns the workers restarted.

        Public and time-injectable so tests drive the breaker state
        machine deterministically without real sleeps.
        """
        now = time.monotonic() if now is None else now
        self._settle_breaker(now)
        restarted: list[str] = []

        dead = self.pool.dead_workers()
        heartbeat_dead = not self.pool.heartbeat_alive() \
            and not self._stop.is_set()
        if not dead and not heartbeat_dead:
            self._mark_stable()
            return restarted

        if self.breaker_state() == "open":
            return restarted  # cooling down; restarts suspended

        for name in dead:
            if not self._restart_allowed(name):
                break  # breaker just tripped mid-sweep
            self._backoff_sleep(name)
            if self.pool.restart_worker(name):
                restarted.append(name)
                self._note_restart(name, now)
        if heartbeat_dead and self._restart_allowed("heartbeat"):
            self._backoff_sleep("heartbeat")
            self.pool.restart_heartbeat()
            restarted.append("heartbeat")
            self._note_restart("heartbeat", now)
        return restarted

    # ------------------------------------------------------------------
    # Breaker mechanics
    # ------------------------------------------------------------------
    def _settle_breaker(self, now: float) -> None:
        with self._lock:
            if (self._breaker == "open"
                    and self._breaker_opened_at is not None
                    and now - self._breaker_opened_at
                    >= self.breaker_cooldown):
                self._breaker = "half-open"
                self._probation = None
                REGISTRY.counter("service.supervisor.breaker.half_open").inc()

    def _mark_stable(self) -> None:
        """A sweep with zero casualties: close a half-open breaker."""
        with self._lock:
            if self._breaker == "half-open" and self._probation is not None:
                self._breaker = "closed"
                self._probation = None
                self._restart_times.clear()
                self._restart_counts.clear()
                REGISTRY.counter("service.supervisor.breaker.closed").inc()
            self._refresh_gauges()

    def _restart_allowed(self, name: str) -> bool:
        with self._lock:
            if self._breaker == "open":
                return False
            if self._breaker == "half-open":
                if self._probation is not None:
                    # The probe died before a stable sweep: re-open.
                    self._open_breaker(time.monotonic())
                    return False
                return True
            return True

    def _note_restart(self, name: str, now: float) -> None:
        REGISTRY.counter("service.supervisor.restarts").inc()
        with self._lock:
            self._restarts_total += 1
            self._restart_counts[name] = \
                self._restart_counts.get(name, 0) + 1
            if self._breaker == "half-open":
                self._probation = name
                self._refresh_gauges()
                return
            cutoff = now - self.breaker_window
            self._restart_times = [t for t in self._restart_times
                                   if t > cutoff]
            self._restart_times.append(now)
            if len(self._restart_times) > self.breaker_threshold:
                self._open_breaker(now)
            self._refresh_gauges()

    def _open_breaker(self, now: float) -> None:
        # Caller holds self._lock.
        self._breaker = "open"
        self._breaker_opened_at = now
        self._probation = None
        REGISTRY.counter("service.supervisor.breaker.opened").inc()

    def _refresh_gauges(self) -> None:
        # Caller holds self._lock.
        REGISTRY.gauge("service.supervisor.breaker_open").set(
            1.0 if self._breaker == "open" else 0.0)
        REGISTRY.gauge("service.workers.alive").set(
            float(self.pool.alive_workers()))

    # ------------------------------------------------------------------
    # Backoff
    # ------------------------------------------------------------------
    def _backoff_sleep(self, name: str) -> None:
        """Jittered exponential pause before reviving ``name``."""
        with self._lock:
            attempt = self._restart_counts.get(name, 0)
        rng = backoff_rng(self.seed, "supervisor", name)
        # Replay the stream to the current attempt so the nth restart
        # draws the nth jitter value even across supervisor sweeps.
        for _ in range(attempt):
            rng.random()
        delay = backoff_delay(self.base_backoff, attempt, rng)
        if delay > 0.0:
            self._stop.wait(delay)

"""Service wiring: config, startup recovery, signals, graceful drain.

:class:`RetimingService` owns the whole resident process:

* **Startup** -- recover the queue directory (requeue interrupted work,
  quarantine corrupt records), install the process-wide analysis cache
  (the warm tier every worker thread shares), start the worker pool,
  the monitor loop and the HTTP server, then write
  ``<root>/service.json`` (``{"host", "port", "pid"}``) so harnesses
  and scripts can discover an ephemeral port.
* **Monitor loop** -- periodically requeues expired leases (the live
  twin of startup recovery) and, under ``drain_after_idle``, initiates
  a drain once the queue has been idle for ``idle_grace`` seconds (the
  batch mode the kill-loop harness runs the service in).
* **Drain** (SIGTERM/SIGINT, idle, or :meth:`initiate_drain`) -- stop
  admitting (503 + Retry-After), let in-flight jobs finish within
  ``drain_timeout``, release whatever is left (back to ``queued``, no
  budget consumed), stop the HTTP server, remove the endpoint file and
  return 0.  After a clean drain the queue holds zero ``leased`` or
  ``running`` records -- the invariant the service tests assert.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any

from .. import cache as analysis_cache
from ..circuits.suites import DEFAULT_SCALE
from ..errors import AdmissionError
from ..telemetry import REGISTRY
from ..telemetry import spans as telemetry
from ..telemetry.profiler import StackProfiler
from .accesslog import AccessLog
from .admission import AdmissionController
from .api import build_server
from .jobs import JobRecord
from .queue import JobQueue
from .sandbox import SandboxLimits
from .supervisor import Supervisor
from .workers import ExecutionDefaults, WorkerPool

ENDPOINT_NAME = "service.json"


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro-ser serve`` configures."""

    root: str
    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (published via the endpoint
    #: file).
    port: int = 0
    #: Worker threads.
    pool: int = 2
    #: Maximum non-terminal jobs before submissions get 429.
    queue_limit: int = 64
    #: Token-bucket refill rate (submissions/second/tenant) and burst.
    rate: float = 10.0
    burst: float = 20.0
    lease_seconds: float = 60.0
    max_requeues: int = 2
    #: Worker-crash budget: a job that kills its (sandboxed) worker this
    #: many times is quarantined as poison.
    max_crashes: int = 3
    #: ``thread`` (default: in-process workers, fastest, shared warm
    #: cache) or ``process`` (one subprocess per job: rlimit budgets,
    #: wall-clock watchdog, crash containment).
    isolation: str = "thread"
    #: Per-job sandbox budgets (process isolation only).  The memory
    #: rlimit must leave headroom for the interpreter + numpy/scipy
    #: baseline (~250 MiB); ``None`` leaves the corresponding resource
    #: unlimited.
    worker_memory_mb: float | None = None
    worker_cpu_seconds: float | None = None
    worker_wall_seconds: float | None = None
    #: Shed new submissions (503 + Retry-After) while the service's
    #: resident set exceeds this many MiB; ``None`` disables shedding.
    memory_budget_mb: float | None = None
    #: Seeds the supervisor's restart-jitter stream.
    seed: int = 0
    #: Default experiment knobs jobs inherit when their spec is silent.
    scale: float = DEFAULT_SCALE
    deadline: float | None = None
    max_retries: int = 1
    retry_backoff: float = 0.0
    #: Analysis engine jobs inherit (``flat``/``object``/``auto``);
    #: digest-invariant, so it never shows up in job results.
    core: str = "auto"
    #: Shared analysis cache (memory + ``<root>/cache`` disk tier).
    cache: bool = True
    #: Exit 0 once the queue has been idle for ``idle_grace`` seconds
    #: (batch mode; the chaos harness drives the service this way).
    drain_after_idle: bool = False
    idle_grace: float = 2.0
    drain_timeout: float = 30.0
    monitor_interval: float = 0.5
    verbose: bool = False
    #: Request-scoped tracing: append the service's span stream (HTTP
    #: request spans, per-job lifecycle spans, absorbed sandbox shards)
    #: to this JSONL file.  ``None`` = tracing off (the <2 % path).
    trace_path: str | None = None
    #: Structured JSONL access log carrying trace/job ids per request.
    access_log: str | None = None
    #: Collapsed-stack sampling-profiler output, written at drain.
    profile_path: str | None = None
    profile_interval: float = 0.01


class RetimingService:
    """One resident retiming service over one queue directory."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        os.makedirs(config.root, exist_ok=True)
        self.queue = JobQueue(config.root,
                              lease_seconds=config.lease_seconds,
                              max_requeues=config.max_requeues,
                              max_crashes=config.max_crashes)
        self.admission = AdmissionController(
            queue_limit=config.queue_limit, rate=config.rate,
            burst=config.burst,
            memory_budget_mb=config.memory_budget_mb)
        self.defaults = ExecutionDefaults(
            scale=config.scale, deadline=config.deadline,
            max_retries=config.max_retries,
            retry_backoff=config.retry_backoff,
            core=config.core)
        limits = SandboxLimits(memory_mb=config.worker_memory_mb,
                               cpu_seconds=config.worker_cpu_seconds,
                               wall_seconds=config.worker_wall_seconds)
        self.pool = WorkerPool(
            self.queue, self.defaults, pool_size=config.pool,
            isolation=config.isolation, limits=limits,
            cache_dir=os.path.join(config.root, "cache")
            if config.cache else None)
        self.supervisor = Supervisor(self.pool, seed=config.seed)
        self.draining = False
        self._drain_requested = threading.Event()
        self._monitor: threading.Thread | None = None
        self.server = None
        self.recovery: dict[str, Any] = {}
        self.access_log = AccessLog(config.access_log) \
            if config.access_log else None

    # ------------------------------------------------------------------
    # Handler-facing API (see api.py)
    # ------------------------------------------------------------------
    def log(self, message: str) -> None:
        if self.config.verbose:
            print(f"[service] {message}", file=sys.stderr, flush=True)

    def submit(self, payload: Any, *, trace_id: str | None = None,
               span_id: str | None = None) -> JobRecord:
        tenant_label = "default"
        if isinstance(payload, dict) and isinstance(payload.get("tenant"),
                                                    str):
            tenant_label = payload["tenant"][:64] or "default"
        try:
            spec, tenant = self.admission.admit(payload,
                                                self.queue.depth())
        except AdmissionError:
            REGISTRY.counter(
                f"service.tenant.{tenant_label}.rejected").inc()
            raise
        record = self.queue.submit(spec, tenant=tenant,
                                   trace_id=trace_id, span_id=span_id)
        REGISTRY.counter(f"service.tenant.{tenant}.accepted").inc()
        self.log(f"accepted job {record.id} ({spec.get('circuit') or spec.get('name')})")
        return record

    def access(self, entry: dict[str, Any]) -> None:
        """Write one access-log line (no-op unless configured)."""
        if self.access_log is not None:
            self.access_log.write(entry)

    def readiness(self) -> tuple[bool, str]:
        if self.draining:
            return False, "service is draining"
        if not self.supervisor.healthy():
            breaker = self.supervisor.breaker_state()
            if breaker == "open":
                return False, ("worker pool is churning (supervisor "
                               "circuit breaker open)")
            return False, (f"worker pool is unhealthy "
                           f"({self.pool.alive_workers()}/"
                           f"{self.pool.pool_size} workers alive, "
                           f"heartbeat "
                           f"{'alive' if self.pool.heartbeat_alive() else 'dead'})")
        if self.queue.depth() >= self.config.queue_limit:
            return False, "queue is full"
        return True, ""

    def health_payload(self) -> dict[str, Any]:
        """The ``/healthz`` body: liveness facts, no verdict.

        ``/healthz`` answers "is the process up" (always 200 while the
        HTTP thread runs); the worker/heartbeat/breaker detail lets an
        operator see *why* ``/readyz`` went 503 without shell access.
        """
        return {"ok": True, "draining": self.draining,
                "isolation": self.config.isolation,
                "workers": self.supervisor.state()}

    def metrics_text(self) -> str:
        self._refresh_gauges()
        return REGISTRY.to_prometheus()

    def metrics_snapshot(self) -> dict[str, Any]:
        """The ``/metrics.json`` body: the raw registry snapshot.

        Machine-friendly twin of ``/metrics`` (histogram buckets stay
        structured instead of Prometheus text), which is what the
        ``repro-ser ops`` console polls for its quantiles and rates.
        """
        self._refresh_gauges()
        return REGISTRY.snapshot()

    def _refresh_gauges(self) -> None:
        counts = self.queue.counts()
        for state, count in counts.items():
            REGISTRY.gauge(f"service.queue.{state}").set(count)
        REGISTRY.gauge("service.workers.busy").set(self.pool.busy())
        REGISTRY.gauge("service.workers.alive").set(
            self.pool.alive_workers())
        REGISTRY.gauge("service.heartbeat.alive").set(
            1.0 if self.pool.heartbeat_alive() else 0.0)
        beat_age = self.pool.last_beat_age()
        if beat_age is not None:
            REGISTRY.gauge("service.heartbeat.age_seconds").set(beat_age)
        REGISTRY.gauge("service.supervisor.breaker_open").set(
            1.0 if self.supervisor.breaker_state() == "open" else 0.0)
        self.admission.memory_pressure()  # refreshes the resident gauge
        REGISTRY.gauge("service.draining").set(1.0 if self.draining else 0.0)

    def queue_summary(self) -> dict[str, Any]:
        jobs = [{"id": r.id, "state": r.state, "tenant": r.tenant,
                 "attempts": r.attempts, "requeues": r.requeues}
                for r in self.queue.jobs()]
        jobs.sort(key=lambda j: j["id"])
        return {"counts": self.queue.counts(), "jobs": jobs}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def initiate_drain(self, why: str) -> None:
        """Idempotent; flips the service into draining mode and wakes
        :meth:`serve` to run the drain sequence."""
        if not self.draining:
            self.draining = True
            self.log(f"drain initiated ({why})")
        self._drain_requested.set()

    def _monitor_loop(self) -> None:
        idle_since: float | None = None
        while not self._drain_requested.wait(self.config.monitor_interval):
            expired = self.queue.requeue_expired()
            for job_id in expired:
                self.log(f"lease expired, requeued {job_id}")
            if self.config.drain_after_idle:
                if self.queue.idle():
                    if idle_since is None:
                        idle_since = time.monotonic()
                    elif time.monotonic() - idle_since \
                            >= self.config.idle_grace:
                        self.initiate_drain("queue idle")
                        return
                else:
                    idle_since = None

    def _endpoint_path(self) -> str:
        return os.path.join(self.config.root, ENDPOINT_NAME)

    def _write_endpoint(self, host: str, port: int) -> None:
        with open(self._endpoint_path(), "w", encoding="utf-8") as handle:
            json.dump({"host": host, "port": port, "pid": os.getpid()},
                      handle)
            handle.write("\n")

    def serve(self) -> int:
        """Run until drained; returns the process exit code (0)."""
        config = self.config
        self.recovery = self.queue.recover()
        for key in ("requeued", "quarantined", "corrupt"):
            if self.recovery[key]:
                self.log(f"recovery {key}: "
                         f"{', '.join(self.recovery[key])}")
        if config.cache:
            analysis_cache.configure(os.path.join(config.root, "cache"))

        tracer = None
        if config.trace_path:
            tracer = telemetry.Tracer(
                config.trace_path,
                meta={"kind": "service", "root": config.root,
                      "isolation": config.isolation, "pid": os.getpid()})
            telemetry.install(tracer)
        profiler = None
        if config.profile_path:
            profiler = StackProfiler(interval=config.profile_interval)
            profiler.start()

        self.server = build_server(self, config.host, config.port)
        host, port = self.server.server_address[:2]
        self._write_endpoint(str(host), int(port))
        self.log(f"listening on {host}:{port} "
                 f"(pool={config.pool}, isolation={config.isolation}, "
                 f"root={config.root})")

        # Registered from the main thread only (signal module contract);
        # both signals mean the same thing here: finish what you hold,
        # persist everything, exit 0.
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGTERM, signal.SIGINT):
                signal.signal(
                    signum,
                    lambda s, frame: self.initiate_drain(
                        signal.Signals(s).name))

        self.pool.start()
        self.supervisor.start()
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="monitor", daemon=True)
        self._monitor.start()
        http_thread = threading.Thread(target=self.server.serve_forever,
                                       name="http", daemon=True)
        http_thread.start()

        self._drain_requested.wait()
        self.draining = True
        # The supervisor stops first: a drain's worker exits are
        # deliberate, not casualties to restart.
        self.supervisor.stop()
        clean = self.pool.drain(config.drain_timeout)
        if not clean:
            self.log("drain timeout: released in-flight leases")
        self.server.shutdown()
        http_thread.join(5.0)
        self.server.server_close()
        if self._monitor is not None:
            self._monitor.join(2.0)
        if profiler is not None:
            profiler.stop()
            try:
                profiler.write(config.profile_path)
                self.log(f"profile written to {config.profile_path} "
                         f"({profiler.samples} samples)")
            except OSError:
                pass  # the profile is advisory; never fail the drain
        if tracer is not None:
            telemetry.uninstall()
            tracer.close()
        if self.access_log is not None:
            self.access_log.close()
        if config.cache:
            analysis_cache.deactivate()
        try:
            os.unlink(self._endpoint_path())
        except OSError:
            pass
        counts = self.queue.counts()
        assert counts["leased"] == 0 and counts["running"] == 0, counts
        self.log(f"drained; final counts {counts}")
        return 0


def read_endpoint(root: str, timeout: float = 10.0) -> dict[str, Any]:
    """Wait for and read a service's endpoint file (harness helper)."""
    path = os.path.join(root, ENDPOINT_NAME)
    deadline = time.monotonic() + timeout
    while True:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"service endpoint file {path!r} did not appear "
                    f"within {timeout:g}s")
            time.sleep(0.05)

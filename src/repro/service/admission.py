"""Admission control: validate, bound the queue, rate-limit per tenant.

Everything a request can get wrong is rejected *here*, before a job
record exists, with a structured :class:`~repro.errors.AdmissionError`
carrying the HTTP status, the offending field and (for transient
rejections) a retry-after hint -- the HTTP layer renders it without
string matching.  An inline netlist is fully parsed at admission, so a
malformed submission fails with the parser's located message
(``line N: ...``) as a 400 instead of burning a worker slot first.

Rate limiting is per tenant via classic token buckets: ``rate`` tokens
per second refill up to a ``burst`` cap, one token per submission.  The
bucket map is LRU-bounded so an open service cannot be grown without
bound by invented tenant names.

Memory-aware load shedding: with a ``memory_budget_mb`` configured, a
submission that arrives while the service's resident set already
exceeds the budget gets an honest 503 + ``Retry-After`` instead of an
admission that would only deepen the pressure.  The probe reads
``/proc/self/status`` (``VmRSS``) and degrades to "no shedding" on
platforms without procfs -- a missing probe must never reject traffic.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Callable

from ..circuits.suites import TABLE1_ROWS
from ..errors import AdmissionError, NetlistError
from ..faultplane.hooks import fault_point
from ..netlist.bench_format import loads_bench
from ..telemetry import REGISTRY

#: Valid Table I circuit names.
TABLE1_NAMES = tuple(row.name for row in TABLE1_ROWS)

#: Longest accepted inline netlist, in characters (~1 MiB of text; the
#: HTTP layer additionally bounds the raw body).
MAX_NETLIST_CHARS = 1 << 20

#: Most tenants tracked at once; least-recently-seen buckets are evicted
#: (an evicted tenant restarts with a full burst -- acceptable: the cap
#: exists to bound memory, not to be airtight accounting).
MAX_TENANTS = 1024

#: Request fields accepted by ``POST /jobs``.
_ALLOWED_FIELDS = ("circuit", "netlist", "name", "tenant", "scale", "seed",
                   "frames", "patterns", "epsilon", "algorithms",
                   "maximal_start", "restart", "core")

#: Analysis-engine choices a job spec may request (digest-invariant).
_CORES = ("flat", "object", "auto")

_ALGORITHMS = ("minobs", "minobswin")

#: Retry-After hint handed out with a memory-pressure 503, in seconds.
#: Long enough for a worker to finish and release its footprint, short
#: enough that a dumb retry loop converges once pressure clears.
MEMORY_SHED_RETRY_AFTER = 5.0


def resident_memory_mb() -> float | None:
    """This process's resident set size in MiB, or ``None`` off-Linux.

    Reads ``VmRSS`` from ``/proc/self/status`` -- no psutil dependency,
    one small read per admission.  Returning ``None`` (no procfs, torn
    read) disables shedding rather than guessing.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        pass
    return None


class TokenBucket:
    """One tenant's token bucket.

    ``clock`` is injectable (monotonic seconds) for the property tests;
    the bucket itself is lock-free -- callers serialize (the admission
    controller runs under the HTTP handler, one admit at a time per
    bucket via the controller's lock in :class:`AdmissionController`).
    """

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0 or burst < 1:
            raise ValueError("rate must be > 0 and burst >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self.tokens = self.burst
        self.updated = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now

    def allow(self) -> tuple[bool, float]:
        """Try to take one token.

        Returns ``(True, 0.0)`` and consumes a token, or ``(False,
        retry_after)`` where ``retry_after`` is the seconds until a
        token will be available at the current refill rate.
        """
        now = self.clock()
        self._refill(now)
        # The tolerance keeps the retry-after contract honest: a client
        # that waits exactly the hinted time refills to ~1.0 minus float
        # rounding and must still be granted.
        if self.tokens >= 1.0 - 1e-9:
            self.tokens = max(0.0, self.tokens - 1.0)
            return True, 0.0
        return False, (1.0 - self.tokens) / self.rate


def _reject(message: str, status: int = 400, field: str | None = None,
            retry_after: float | None = None) -> AdmissionError:
    REGISTRY.counter("service.jobs.rejected").inc()
    return AdmissionError(message, status=status, field=field,
                          retry_after=retry_after)


def _require_number(payload: dict[str, Any], field: str, kind: type,
                    minimum: float, maximum: float | None = None) -> Any:
    value = payload[field]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _reject(f"{field!r} must be a number", field=field)
    if kind is int and not isinstance(value, int):
        raise _reject(f"{field!r} must be an integer", field=field)
    value = kind(value)
    if value < minimum or (maximum is not None and value > maximum):
        bound = f">= {minimum:g}" if maximum is None \
            else f"in [{minimum:g}, {maximum:g}]"
        raise _reject(f"{field!r} must be {bound}", field=field)
    return value


def validate_payload(payload: Any) -> dict[str, Any]:
    """Turn a raw request payload into a normalized job spec.

    The spec is the exact experiment surface a job executes with:
    ``{"circuit": name}`` *or* ``{"netlist": text, "name": str}``, plus
    only the knobs the client actually set (service defaults fill the
    rest at execution time, so a stored spec stays meaningful across
    config changes).
    """
    if not isinstance(payload, dict):
        raise _reject("request body must be a JSON object")
    for key in payload:
        if key not in _ALLOWED_FIELDS:
            raise _reject(f"unknown field {key!r} (accepted: "
                          f"{', '.join(_ALLOWED_FIELDS)})", field=str(key))
    has_circuit = "circuit" in payload
    has_netlist = "netlist" in payload
    if has_circuit == has_netlist:
        raise _reject("provide exactly one of 'circuit' or 'netlist'")

    spec: dict[str, Any] = {}
    if has_circuit:
        name = payload["circuit"]
        if not isinstance(name, str) or name not in TABLE1_NAMES:
            raise _reject(
                f"unknown circuit {name!r} (Table I rows: "
                f"{', '.join(TABLE1_NAMES)})", field="circuit")
        spec["circuit"] = name
    else:
        text = payload["netlist"]
        if not isinstance(text, str) or not text.strip():
            raise _reject("'netlist' must be non-empty .bench source",
                          field="netlist")
        if len(text) > MAX_NETLIST_CHARS:
            raise _reject(
                f"netlist too large ({len(text)} chars, max "
                f"{MAX_NETLIST_CHARS})", status=413, field="netlist")
        name = payload.get("name", "inline")
        if not isinstance(name, str) or not name:
            raise _reject("'name' must be a non-empty string", field="name")
        try:
            loads_bench(text, name)
        except NetlistError as exc:
            raise _reject(f"netlist rejected: {exc}", field="netlist") \
                from exc
        spec["netlist"] = text
        spec["name"] = name

    if "scale" in payload:
        spec["scale"] = _require_number(payload, "scale", float,
                                        1e-4, 10.0)
    if "seed" in payload:
        spec["seed"] = _require_number(payload, "seed", int, 0, 2**31)
    if "frames" in payload:
        spec["frames"] = _require_number(payload, "frames", int, 1, 64)
    if "patterns" in payload:
        spec["patterns"] = _require_number(payload, "patterns", int, 1,
                                           1 << 16)
    if "epsilon" in payload:
        spec["epsilon"] = _require_number(payload, "epsilon", float,
                                          0.0, 1.0)
    if "algorithms" in payload:
        algorithms = payload["algorithms"]
        if (not isinstance(algorithms, list) or not algorithms
                or any(a not in _ALGORITHMS for a in algorithms)):
            raise _reject(
                f"'algorithms' must be a non-empty subset of "
                f"{list(_ALGORITHMS)}", field="algorithms")
        spec["algorithms"] = list(algorithms)
    for flag in ("maximal_start", "restart"):
        if flag in payload:
            if not isinstance(payload[flag], bool):
                raise _reject(f"{flag!r} must be a boolean", field=flag)
            spec[flag] = payload[flag]
    if "core" in payload:
        core = payload["core"]
        if not isinstance(core, str) or core not in _CORES:
            raise _reject(f"'core' must be one of {list(_CORES)}",
                          field="core")
        spec["core"] = core
    return spec


def validate_tenant(payload: dict[str, Any]) -> str:
    tenant = payload.get("tenant", "default") \
        if isinstance(payload, dict) else "default"
    if not isinstance(tenant, str) or not tenant or len(tenant) > 64:
        raise _reject("'tenant' must be a string of 1..64 characters",
                      field="tenant")
    return tenant


class AdmissionController:
    """The service front door: everything between HTTP and the queue."""

    def __init__(self, *, queue_limit: int = 64, rate: float = 10.0,
                 burst: float = 20.0,
                 memory_budget_mb: float | None = None,
                 memory_probe: Callable[[], float | None]
                 = resident_memory_mb,
                 clock: Callable[[], float] = time.monotonic):
        self.queue_limit = int(queue_limit)
        self.rate = float(rate)
        self.burst = float(burst)
        self.memory_budget_mb = None if memory_budget_mb is None \
            else float(memory_budget_mb)
        self.memory_probe = memory_probe
        self.clock = clock
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()

    def memory_pressure(self) -> tuple[bool, float | None]:
        """``(over_budget, resident_mb)`` under the configured budget.

        Always ``(False, resident)`` when no budget is set or the probe
        has nothing to say.
        """
        if self.memory_budget_mb is None:
            return False, None
        resident = self.memory_probe()
        if resident is None:
            return False, None
        REGISTRY.gauge("service.memory.resident_mb").set(resident)
        return resident > self.memory_budget_mb, resident

    def bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, self.clock)
            self._buckets[tenant] = bucket
        self._buckets.move_to_end(tenant)
        while len(self._buckets) > MAX_TENANTS:
            self._buckets.popitem(last=False)
        return bucket

    def admit(self, payload: Any, queue_depth: int) -> tuple[dict[str, Any],
                                                             str]:
        """Admit one submission or raise :class:`AdmissionError`.

        Check order: the tenant and payload shape first (a 400 beats a
        429 -- a malformed request is never "retryable later"), then
        memory pressure, then the queue bound, then the tenant's token
        bucket.  Memory shedding outranks the queue bound because an
        over-budget process must reject even when the queue has room --
        the budget protects the *host*, not the queue.  The
        ``service.accept`` fault site fires before any state is touched:
        an injected fault surfaces as a 5xx and the client simply never
        got its 202 -- nothing to lose.
        """
        fault_point("service.accept", depth=queue_depth)
        tenant = validate_tenant(payload)
        spec = validate_payload(payload)
        over_budget, resident = self.memory_pressure()
        if over_budget:
            REGISTRY.counter("service.jobs.shed_memory").inc()
            raise _reject(
                f"service is under memory pressure ({resident:.0f} MiB "
                f"resident, budget {self.memory_budget_mb:.0f} MiB)",
                status=503, retry_after=MEMORY_SHED_RETRY_AFTER)
        if queue_depth >= self.queue_limit:
            raise _reject(
                f"queue full ({queue_depth} jobs in flight, limit "
                f"{self.queue_limit})", status=429, retry_after=5.0)
        allowed, retry_after = self.bucket(tenant).allow()
        if not allowed:
            raise _reject(
                f"rate limit exceeded for tenant {tenant!r}", status=429,
                retry_after=max(0.1, round(retry_after, 3)))
        return spec, tenant

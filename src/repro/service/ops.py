"""``repro-ser ops``: a live terminal console over a running service.

Zero-dependency operational visibility: the console polls the three
read-only endpoints a service already serves -- ``/healthz`` (worker
liveness, breaker state), ``/metrics.json`` (the raw registry
snapshot) and ``/jobs`` (queue counts) -- and renders one screenful:

* queue depth per state, jobs accepted/completed/failed/quarantined;
* worker liveness (alive/pool, busy, heartbeat age, supervisor
  breaker), drain flag, resident memory;
* shed/rejection counters with per-second *rates* computed from the
  delta between consecutive metric snapshots;
* per-endpoint latency quantiles (p50/p95/p99) interpolated from the
  ``http.seconds.<route>`` histogram buckets
  (:func:`repro.telemetry.metrics.histogram_quantile`).

``--once`` prints a single snapshot and exits (scripts, tests);
otherwise the console clears and redraws every ``--interval`` seconds
until interrupted or ``--count`` screens have been drawn.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any

from ..errors import ReproError
from ..telemetry.metrics import histogram_quantile
from .api import ROUTE_LABELS
from .app import read_endpoint

#: Quantiles shown per endpoint.
QUANTILES = (0.50, 0.95, 0.99)

#: Counters rendered in the "traffic" section, with short labels.
TRAFFIC_COUNTERS = (
    ("service.jobs.accepted", "accepted"),
    ("service.jobs.completed", "completed"),
    ("service.jobs.failed", "failed"),
    ("service.jobs.requeued", "requeued"),
    ("service.jobs.crash_requeued", "crash-requeued"),
    ("service.jobs.quarantined", "quarantined"),
    ("service.jobs.rejected", "rejected"),
    ("service.jobs.shed_memory", "shed (memory)"),
)


def _get_json(host: str, port: int, path: str,
              timeout: float = 5.0) -> dict[str, Any]:
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        body = response.read().decode("utf-8")
    finally:
        conn.close()
    if response.status != 200:
        raise ReproError(f"GET {path} -> {response.status}")
    return json.loads(body)


def fetch_status(host: str, port: int) -> dict[str, Any]:
    """One consistent-enough poll of the three read-only endpoints."""
    return {
        "ts": time.time(),
        "health": _get_json(host, port, "/healthz"),
        "metrics": _get_json(host, port, "/metrics.json"),
        "jobs": _get_json(host, port, "/jobs"),
    }


def _metric_value(metrics: dict[str, Any], name: str) -> float:
    entry = metrics.get("metrics", {}).get(name)
    if not entry:
        return 0.0
    return float(entry.get("value", entry.get("count", 0)))


def _rate(now: dict[str, Any], prev: dict[str, Any] | None,
          name: str) -> float | None:
    """Per-second increase of a counter between two polls, if possible."""
    if prev is None:
        return None
    elapsed = now["ts"] - prev["ts"]
    if elapsed <= 0:
        return None
    delta = _metric_value(now["metrics"], name) \
        - _metric_value(prev["metrics"], name)
    return max(0.0, delta) / elapsed


def _latency_rows(metrics: dict[str, Any]) -> list[str]:
    rows: list[str] = []
    for route in ROUTE_LABELS:
        entry = metrics.get("metrics", {}).get(f"http.seconds.{route}")
        if not entry or entry.get("type") != "histogram" \
                or not entry.get("count"):
            continue
        quantiles = []
        for q in QUANTILES:
            value = histogram_quantile(q, entry["buckets"],
                                       entry["counts"])
            quantiles.append("--" if value is None
                             else f"{value * 1e3:8.1f}ms")
        rows.append(f"  {route:<16} n={entry['count']:<6} "
                    f"p50 {quantiles[0]}  p95 {quantiles[1]}  "
                    f"p99 {quantiles[2]}")
    return rows


def render_status(status: dict[str, Any],
                  prev: dict[str, Any] | None = None) -> str:
    """One screenful of console text from a :func:`fetch_status` poll."""
    health = status["health"]
    metrics = status["metrics"]
    counts = status["jobs"].get("counts", {})
    # The /healthz "workers" object is the supervisor's flat snapshot:
    # breaker/restarts plus the pool's liveness fields.
    pool = health.get("workers", {})
    lines = [
        f"repro-ser ops  "
        f"{time.strftime('%H:%M:%S', time.localtime(status['ts']))}  "
        f"{'DRAINING' if health.get('draining') else 'serving'}  "
        f"isolation={health.get('isolation', '?')}",
        "",
        "queue     " + "  ".join(
            f"{state}={counts.get(state, 0)}"
            for state in ("queued", "leased", "running", "done",
                          "failed", "quarantined")),
        f"workers   alive={pool.get('workers_alive', '?')}/"
        f"{pool.get('pool_size', '?')}  busy={pool.get('busy', '?')}  "
        f"heartbeat={'up' if pool.get('heartbeat_alive') else 'DOWN'}"
        + (f" (beat {pool.get('last_beat_age'):.1f}s ago)"
           if isinstance(pool.get("last_beat_age"), (int, float))
           else "")
        + f"  breaker={pool.get('breaker', '?')}",
    ]
    resident = _metric_value(metrics, "service.memory.resident_mb")
    if resident:
        lines.append(f"memory    resident={resident:.0f} MiB")
    lines.append("")
    lines.append("traffic")
    for name, label in TRAFFIC_COUNTERS:
        total = _metric_value(metrics, name)
        rate = _rate(status, prev, name)
        rate_text = f"  ({rate:.2f}/s)" if rate is not None else ""
        lines.append(f"  {label:<16} {total:>8.0f}{rate_text}")
    latency = _latency_rows(metrics)
    if latency:
        lines.append("")
        lines.append("http latency")
        lines.extend(latency)
    return "\n".join(lines) + "\n"


def run_console(root: str, *, interval: float = 2.0,
                count: int | None = None, once: bool = False,
                endpoint_timeout: float = 5.0) -> int:
    """Drive the console against the service owning ``root``.

    Returns a process exit code.  ``--once`` prints one snapshot with
    no screen clearing (safe to pipe); the live mode redraws with an
    ANSI home+clear, which every terminal this project targets honors.
    """
    endpoint = read_endpoint(root, timeout=endpoint_timeout)
    host, port = str(endpoint["host"]), int(endpoint["port"])
    prev: dict[str, Any] | None = None
    drawn = 0
    while True:
        status = fetch_status(host, port)
        screen = render_status(status, prev)
        if once or count is not None:
            print(screen, end="")
        else:
            print("\x1b[H\x1b[2J" + screen, end="", flush=True)
        drawn += 1
        if once or (count is not None and drawn >= count):
            return 0
        prev = status
        time.sleep(max(0.1, interval))

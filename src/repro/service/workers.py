"""The worker pool: claim -> start -> execute -> complete.

Two isolation modes, selected by ``WorkerPool(isolation=...)``:

``thread`` (default)
    The job executes inline in the claiming thread.  One shared warm
    analysis cache (:mod:`repro.cache` plus the suite's observability
    memo) is the whole point of a resident service -- a resubmitted
    circuit reuses the expensive simulation results instead of
    recomputing them.  The numeric kernels release work to numpy, so
    thread workers overlap usefully despite the GIL; crash isolation
    comes from the durable queue, not from process boundaries.

``process``
    The claiming thread hands the job to a fresh subprocess
    (:mod:`repro.service.sandbox`) under memory/CPU rlimits and a
    wall-clock watchdog, then routes the classified outcome.  A
    pathological job (hang, OOM, native crash) kills only its own
    worker process; the claiming thread survives, records the crash on
    the job (:meth:`~repro.service.queue.JobQueue.record_crash` -- the
    poison-job budget), and moves on.  The child shares the *disk*
    cache tier, so warm-cache reuse survives isolation.

Failure routing (the heart of the never-lose-a-job claim):

* The *job* fails deterministically (every ladder rung gave up -- the
  row status is ``failed:<stage>``): terminal ``failed``, with the
  degraded record attached.  Retrying cannot help.
* The *infrastructure* fails (an injected ``service.persist`` fault, a
  disk error, any unexpected exception): budgeted ``requeue``.  If even
  the requeue persist fails, the job simply stays leased -- the monitor
  loop's lease expiry requeues it later.  There is no code path that
  discards a claimed job.
* A :class:`~repro.errors.JobStateError` means this worker lost a race
  (graceful drain released the job, or an expired lease requeued it and
  someone else finished it): drop the local result on the floor -- the
  queue's transition table already guaranteed only one outcome won.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from ..circuits.suites import DEFAULT_SCALE, table1_circuit
from ..errors import JobStateError, TelemetryError
from ..netlist.bench_format import loads_bench
from ..netlist.circuit import Circuit
from ..runtime.suite import SuiteConfig, optimize_resilient
from ..telemetry import REGISTRY
from ..telemetry import spans as telemetry
from .jobs import JobRecord, job_result_digest
from .queue import JobQueue


@dataclass(frozen=True)
class ExecutionDefaults:
    """Service-wide experiment/resilience defaults a job spec may
    override (the spec wins field-by-field)."""

    scale: float = DEFAULT_SCALE
    seed: int = 0
    n_frames: int = 15
    n_patterns: int = 256
    epsilon: float = 0.10
    algorithms: tuple[str, ...] = ("minobs", "minobswin")
    deadline: float | None = None
    max_retries: int = 1
    retry_backoff: float = 0.0
    #: Analysis engine (``flat``/``object``/``auto``) -- an execution
    #: knob: result digests are core-invariant (``tests/flatcore``).
    core: str = "auto"


def build_circuit(spec: dict[str, Any],
                  defaults: ExecutionDefaults) -> tuple[str, Circuit,
                                                        float | None]:
    """Materialize the job's circuit; returns (name, circuit, scale)."""
    if "circuit" in spec:
        name = str(spec["circuit"])
        scale = float(spec.get("scale", defaults.scale))
        circuit = table1_circuit(name, scale=scale,
                                 seed=int(spec.get("seed", defaults.seed)))
        return name, circuit, scale
    name = str(spec.get("name", "inline"))
    return name, loads_bench(str(spec["netlist"]), name), None


def execute_job(spec: dict[str, Any],
                defaults: ExecutionDefaults) -> dict[str, Any]:
    """Run one job spec through the resilient pipeline.

    Returns the terminal result payload: the circuit record dict plus
    its :func:`~repro.service.jobs.job_result_digest` -- byte-equal, by
    the manifest masking contract, to what a clean serial ``table1`` run
    of the same experiment knobs would record for this circuit.
    """
    name, circuit, scale = build_circuit(spec, defaults)
    config = SuiteConfig(
        circuits=(name,), scale=scale,
        seed=int(spec.get("seed", defaults.seed)),
        n_frames=int(spec.get("frames", defaults.n_frames)),
        n_patterns=int(spec.get("patterns", defaults.n_patterns)),
        epsilon=float(spec.get("epsilon", defaults.epsilon)),
        algorithms=tuple(spec.get("algorithms", defaults.algorithms)),
        maximal_start=bool(spec.get("maximal_start", False)),
        restart=bool(spec.get("restart", True)),
        deadline=defaults.deadline, max_retries=defaults.max_retries,
        retry_backoff=defaults.retry_backoff,
        core=str(spec.get("core", defaults.core)))
    run = optimize_resilient(circuit, config)
    record = run.to_record().to_dict()
    return {"name": name, "status": run.status, "record": record,
            "digest": job_result_digest(name, record)}


#: Crash-outcome kind -> worker-death counter metric.
_CRASH_METRICS = {"crash": "service.worker.crashes",
                  "oom": "service.worker.ooms",
                  "timeout": "service.worker.timeouts"}


@contextmanager
def _job_span(record: JobRecord, name: str,
              **attrs: Any) -> Iterator[Any]:
    """A job-lifecycle span parented to the job's durable root span.

    Explicit parent/trace (from the record's persisted trace context)
    rather than the thread stack, so the spans of every attempt -- any
    worker thread, any service restart -- land as siblings under the
    same ``http.request`` root.  Yields ``None`` (and costs one ``None``
    test) when tracing is off.
    """
    tracer = telemetry.active()
    if tracer is None:
        yield None
        return
    attrs.setdefault("job", record.id)
    attrs.setdefault("attempt", record.attempts)
    span = tracer.begin(name, attrs, parent=record.span_id,
                        trace=record.trace_id)
    try:
        yield span
    except BaseException as exc:
        span.attrs.setdefault("error", type(exc).__name__)
        raise
    finally:
        tracer.end(span)


class WorkerPool:
    """N claim-execute threads plus one lease-heartbeat thread.

    Worker and heartbeat threads are individually *restartable*
    (:meth:`restart_worker`, :meth:`restart_heartbeat`): a thread that
    dies unexpectedly is reported by :meth:`dead_workers` /
    :meth:`heartbeat_alive` and revived by the supervisor
    (:mod:`repro.service.supervisor`) -- the pool itself never
    silently shrinks.
    """

    def __init__(self, queue: JobQueue, defaults: ExecutionDefaults, *,
                 pool_size: int = 2, poll_interval: float = 0.2,
                 heartbeat_interval: float | None = None,
                 isolation: str = "thread",
                 limits: "SandboxLimits | None" = None,
                 cache_dir: str | None = None):
        if isolation not in ("thread", "process"):
            raise ValueError(
                f"isolation must be 'thread' or 'process', "
                f"got {isolation!r}")
        self.queue = queue
        self.defaults = defaults
        self.pool_size = max(1, int(pool_size))
        self.poll_interval = float(poll_interval)
        self.isolation = isolation
        self.limits = limits
        self.cache_dir = cache_dir
        # A third of the lease keeps two missed beats from expiring it.
        self.heartbeat_interval = heartbeat_interval if \
            heartbeat_interval is not None else queue.lease_seconds / 3.0
        self._stop = threading.Event()
        self._threads: dict[str, threading.Thread] = {}
        self._heartbeat: threading.Thread | None = None
        self._current: dict[str, str] = {}  # worker name -> job id
        self._current_lock = threading.Lock()
        self._last_beat: float | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        for index in range(self.pool_size):
            self._spawn_worker(f"worker-{index}")
        self.restart_heartbeat()

    def _spawn_worker(self, name: str) -> None:
        thread = threading.Thread(target=self._run, args=(name,),
                                  name=name, daemon=True)
        self._threads[name] = thread
        thread.start()

    def drain(self, timeout: float = 30.0) -> bool:
        """Stop claiming, wait for in-flight jobs, release stragglers.

        Returns True when every worker exited within the timeout.  A
        worker still mid-job past the deadline has its lease released
        (back to ``queued``, no budget consumed) so the queue holds zero
        ``leased``/``running`` records at exit; if that zombie thread
        eventually finishes, its completion loses the transition race
        and is dropped.
        """
        self._stop.set()
        deadline = time.monotonic() + max(0.0, timeout)
        clean = True
        for thread in self._threads.values():
            thread.join(max(0.0, deadline - time.monotonic()))
            clean = clean and not thread.is_alive()
        if self._heartbeat is not None:
            self._heartbeat.join(max(0.1, deadline - time.monotonic()))
        for job_id in self.in_flight():
            try:
                self.queue.release(job_id)
            except (JobStateError, OSError):
                pass  # already terminal, or persist refused -- monitor's job
        return clean

    def in_flight(self) -> list[str]:
        with self._current_lock:
            return sorted(self._current.values())

    def busy(self) -> int:
        with self._current_lock:
            return len(self._current)

    # ------------------------------------------------------------------
    # Liveness (read by the supervisor and the health endpoints)
    # ------------------------------------------------------------------
    def alive_workers(self) -> int:
        return sum(1 for t in self._threads.values() if t.is_alive())

    def dead_workers(self) -> list[str]:
        """Names of worker threads that died without being drained."""
        if self._stop.is_set():
            return []
        return sorted(name for name, t in self._threads.items()
                      if not t.is_alive())

    def restart_worker(self, name: str) -> bool:
        """Replace a dead worker thread; no-op while draining."""
        if self._stop.is_set():
            return False
        thread = self._threads.get(name)
        if thread is not None and thread.is_alive():
            return False
        with self._current_lock:
            self._current.pop(name, None)  # its job is lease-recovered
        self._spawn_worker(name)
        return True

    def heartbeat_alive(self) -> bool:
        return self._heartbeat is not None and self._heartbeat.is_alive()

    def restart_heartbeat(self) -> None:
        if self._stop.is_set() or self.heartbeat_alive():
            return
        self._heartbeat = threading.Thread(target=self._beat,
                                           name="heartbeat", daemon=True)
        self._heartbeat.start()

    def last_beat_age(self) -> float | None:
        """Seconds since the heartbeat loop last completed a sweep, or
        ``None`` before the first one."""
        if self._last_beat is None:
            return None
        return max(0.0, time.monotonic() - self._last_beat)

    def liveness(self) -> dict[str, Any]:
        """One structured snapshot for ``/healthz`` and ``/metrics``."""
        return {
            "pool_size": self.pool_size,
            "workers_alive": self.alive_workers(),
            "heartbeat_alive": self.heartbeat_alive(),
            "last_beat_age": self.last_beat_age(),
            "busy": self.busy(),
            "isolation": self.isolation,
        }

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------
    def _set_current(self, worker: str, job_id: str | None) -> None:
        with self._current_lock:
            if job_id is None:
                self._current.pop(worker, None)
            else:
                self._current[worker] = job_id

    def _run(self, worker: str) -> None:
        while not self._stop.is_set():
            try:
                record = self.queue.claim(worker)
            except Exception:
                # An injected/real lease fault: nothing was leased
                # (claim persists before returning), so just back off.
                REGISTRY.counter("service.lease.errors").inc()
                self._stop.wait(self.poll_interval)
                continue
            if record is None:
                self._stop.wait(self.poll_interval)
                continue
            self._set_current(worker, record.id)
            try:
                self._emit_queue_wait(record, worker)
                self._execute(record)
            finally:
                self._set_current(worker, None)

    def _emit_queue_wait(self, record: JobRecord, worker: str) -> None:
        """Synthesize the queue.wait span from the claim's bookkeeping.

        The wait already *happened* (between the job last becoming
        queued and this claim), so the span is back-dated by the
        ``queued_for`` the claim stashed in the lease.  After a service
        restart the start time can land before the tracer's epoch
        (negative ``t0``) -- harmless, readers only difference times.
        """
        tracer = telemetry.active()
        if tracer is None or record.trace_id is None:
            return
        wait = float((record.lease or {}).get("queued_for", 0.0))
        tracer.emit_span("queue.wait", tracer.now() - wait,
                         {"job": record.id, "attempt": record.attempts,
                          "worker": worker},
                         parent=record.span_id, trace=record.trace_id)

    def _execute(self, record: JobRecord) -> None:
        job_id, spec = record.id, record.spec
        try:
            with _job_span(record, "job.lease",
                           worker=(record.lease or {}).get("worker")):
                record = self.queue.start(job_id)
            if self.isolation == "process":
                self._execute_sandboxed(record)
            else:
                with _job_span(record, "job.execute", isolation="thread"):
                    result = execute_job(spec, self.defaults)
                with _job_span(record, "job.persist",
                               outcome=result["status"]):
                    self._finish(job_id, result)
        except JobStateError:
            pass  # lost a drain/expiry race; the queue's outcome stands
        except Exception as exc:
            REGISTRY.counter("service.jobs.errors").inc()
            try:
                with _job_span(record, "job.persist", outcome="requeue"):
                    self.queue.requeue(
                        job_id, reason=f"{type(exc).__name__}: {exc}")
            except Exception:
                pass  # still leased; lease expiry will requeue it

    def _finish(self, job_id: str, result: dict[str, Any]) -> None:
        """Route a produced result payload to its terminal state."""
        if result["status"].startswith("failed:"):
            self.queue.fail(job_id, {
                "message": f"pipeline gave up ({result['status']})",
                "name": result["name"], "record": result["record"],
                "digest": result["digest"]})
        else:
            self.queue.complete(job_id, result)

    def _execute_sandboxed(self, record: JobRecord) -> None:
        """Process-isolation path: spawn, classify, route.

        Raises nothing sandbox-specific -- a worker-process death comes
        back as a classified outcome and feeds the job's crash budget;
        only queue transitions can raise (handled by :meth:`_execute`).

        Trace propagation across the process boundary: the child gets a
        shard path, an id prefix, the trace id and the parent-side
        ``job.execute`` span id through ``input.json``; it traces into
        the shard (a sibling of the main trace file, *outside* the
        throwaway sandbox workdir), and this thread folds the shard
        into the live trace with :meth:`~repro.telemetry.Tracer.absorb`
        once the subprocess is gone.  A killed child leaves at most a
        torn shard tail, which absorb skips.
        """
        from .sandbox import run_sandboxed

        job_id, attempt, spec = record.id, record.attempts, record.spec
        tracer = telemetry.active()
        child_telemetry = None
        shard_path = None
        try:
            with _job_span(record, "job.execute",
                           isolation="process") as span:
                if tracer is not None and span is not None:
                    shard_path = (f"{tracer.path}.sandbox-{job_id}"
                                  f"-{attempt}.jsonl")
                    child_telemetry = {
                        "path": shard_path,
                        "prefix": f"sb-{job_id}-{attempt}-",
                        "trace": record.trace_id,
                        "parent": span.id,
                    }
                outcome = run_sandboxed(spec, self.defaults,
                                        job_id=job_id, attempt=attempt,
                                        limits=self.limits,
                                        cache_dir=self.cache_dir,
                                        telemetry=child_telemetry)
        finally:
            if tracer is not None and shard_path is not None:
                try:
                    tracer.absorb(shard_path)
                except TelemetryError:
                    pass  # unreadable shard loses spans, never the job
        if outcome.kind == "result":
            with _job_span(record, "job.persist",
                           outcome=outcome.result["status"]):
                self._finish(job_id, outcome.result)
        elif outcome.kind == "error":
            error = outcome.error or {}
            REGISTRY.counter("service.jobs.errors").inc()
            with _job_span(record, "job.persist", outcome="requeue"):
                self.queue.requeue(
                    job_id, reason=f"{error.get('type', 'Error')}: "
                                   f"{error.get('message', '')}")
        else:  # crash / oom / timeout: the worker process died
            REGISTRY.counter(_CRASH_METRICS.get(
                outcome.kind, "service.worker.crashes")).inc()
            with _job_span(record, "job.persist",
                           outcome=f"crash:{outcome.kind}"):
                self.queue.record_crash(job_id, outcome.evidence)

    def _beat(self) -> None:
        """Extend the leases of in-flight jobs, forever.

        Self-healing by construction: *nothing* a beat can hit is
        allowed to end the loop.  A job that finished between the
        snapshot and the beat raises :class:`JobStateError` -- routine,
        not even counted.  A persist refusal (disk error, injected
        fault) is counted (``service.heartbeat.errors``) and the loop
        keeps beating -- one failed sweep must cost one interval, never
        every running job's lease.
        """
        while not self._stop.wait(self.heartbeat_interval):
            try:
                for job_id in self.in_flight():
                    try:
                        self.queue.heartbeat(job_id)
                    except JobStateError:
                        pass  # job reached a terminal state; routine
                    except Exception:
                        REGISTRY.counter("service.heartbeat.errors").inc()
            except Exception:
                # Belt and braces: even a failure *enumerating* the
                # in-flight set must not kill the heartbeat thread.
                REGISTRY.counter("service.heartbeat.errors").inc()
            self._last_beat = time.monotonic()

"""Durable job records: states, legal transitions, atomic persistence.

One job = one file ``<queue root>/jobs/<id>.json`` (format
``repro-job``, version 2, sha256 checksum over the canonical JSON;
version-1 records -- written before trace context existed -- load
compatibly with ``trace_id``/``span_id`` as ``None``).
Every record write rides the same durability protocol as the run
manifest (temp file -> flush -> fsync -> atomic rename -> best-effort
directory fsync), so a crash at any point leaves either the previous
record or the new one -- never a torn file.  The write path visits the
``service.persist`` fault-injection site; the service chaos suite kills
the process there to prove the claim.

Lifecycle::

    queued -> leased -> running -> done
       ^________|_________|-----> failed        (terminal)
       (requeue, budgeted)ꞌ-----> quarantined   (terminal)

``queued -> quarantined`` also exists: a requeue that exhausts the
budget quarantines instead of looping forever.  The transition table is
the single source of truth -- :meth:`JobRecord.transition` refuses
anything else with a :class:`~repro.errors.JobStateError`, which is how
a drained worker racing a requeued job is caught instead of corrupting
state.

See ``docs/file_formats.md`` (job-record section) for the field
reference.
"""

from __future__ import annotations

import json
import os
import tempfile
import uuid
from dataclasses import dataclass, field
from typing import Any

from ..errors import JobStateError
from ..faultplane.hooks import fault_point
from ..runtime.manifest import manifest_checksum, result_checksum

JOB_FORMAT = "repro-job"
#: Version 2 added the ``trace_id``/``span_id`` observability fields;
#: version-1 records (no trace context) still load cleanly.
JOB_VERSION = 2
COMPATIBLE_JOB_VERSIONS = (1, 2)

#: Every job state, in rough lifecycle order.
JOB_STATES = ("queued", "leased", "running", "done", "failed", "quarantined")
#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "quarantined")

#: Legal state transitions.  ``leased/running -> queued`` is the
#: requeue/release edge (crash recovery, expired leases, graceful
#: drain); ``* -> quarantined`` fires when the requeue budget runs out.
TRANSITIONS: dict[str, tuple[str, ...]] = {
    "queued": ("leased", "quarantined"),
    "leased": ("running", "queued", "quarantined"),
    "running": ("done", "failed", "queued", "quarantined"),
    "done": (),
    "failed": (),
    "quarantined": (),
}


def new_job_id() -> str:
    """A fresh collision-free job id (``j-`` + 12 hex chars)."""
    return "j-" + uuid.uuid4().hex[:12]


def job_result_digest(name: str, record: dict[str, Any]) -> str:
    """The determinism digest of one circuit record, service-side.

    Wraps the record exactly the way a single-circuit manifest would
    (``{"completed": {name: record}}``) and reuses the manifest's
    :func:`~repro.runtime.manifest.result_checksum`, so a job result
    computed by the service -- warm cache, any worker, any restart
    count -- carries the *same* digest as the same circuit in a clean
    serial ``table1`` manifest.  The kill-loop harness leans on this
    equality as its correctness oracle.
    """
    return result_checksum({"completed": {name: record}})


@dataclass
class JobRecord:
    """Everything the queue keeps for one job.

    Attributes
    ----------
    id:
        Stable job id (also the record's file stem).
    tenant:
        Admission tenant the job was accepted under (rate-limit key).
    state:
        One of :data:`JOB_STATES`.
    spec:
        The normalized job spec produced by admission (circuit name or
        inline netlist, plus experiment knobs).
    submitted_at / updated_at:
        Unix timestamps (wall clock, advisory -- never part of any
        digest).
    attempts:
        Execution attempts started (leases taken).
    requeues:
        Budgeted crash/expiry requeues consumed (a graceful-drain
        release is *not* a requeue and does not consume budget).
    max_requeues:
        Requeue budget; exhausting it quarantines the job.
    crashes:
        Times this job killed the worker executing it (a sandboxed
        worker subprocess that segfaulted, blew its memory rlimit or
        hung past the watchdog).  A separate budget from ``requeues``
        so the quarantine verdict names the real culprit: poison input,
        not flaky infrastructure.
    max_crashes:
        Crash budget; a job that kills its worker this many times is
        quarantined as poison with the evidence attached.
    crash_evidence:
        The most recent crash reports (bounded list of dicts: fault
        kind, exit code / signal, stderr tail, elapsed seconds), kept
        so a quarantined poison job carries its own post-mortem.
    lease:
        ``{"worker": str, "expires_at": float}`` while leased/running,
        else ``None``.
    result:
        Terminal payload of a ``done`` job: ``{"name", "status",
        "record", "digest"}`` where ``record`` is the
        :class:`~repro.runtime.manifest.CircuitRecord` dict and
        ``digest`` its :func:`job_result_digest`.
    error:
        Terminal payload of a ``failed``/``quarantined`` job.
    trace_id / span_id:
        Request-scoped trace context minted at admission (the trace id
        and the ``http.request`` root span id of the submitting POST).
        Every lifecycle span of this job -- across requeues, worker
        restarts and sandbox subprocesses -- parents to ``span_id`` and
        carries ``trace_id``, and the executions journal repeats both,
        so audit lines join to traces.  ``None`` on version-1 records
        and untraced submissions.
    """

    id: str
    tenant: str = "default"
    state: str = "queued"
    spec: dict[str, Any] = field(default_factory=dict)
    submitted_at: float = 0.0
    updated_at: float = 0.0
    attempts: int = 0
    requeues: int = 0
    max_requeues: int = 2
    crashes: int = 0
    max_crashes: int = 3
    crash_evidence: list[dict[str, Any]] = field(default_factory=list)
    lease: dict[str, Any] | None = None
    result: dict[str, Any] | None = None
    error: dict[str, Any] | None = None
    trace_id: str | None = None
    span_id: str | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def transition(self, new_state: str) -> None:
        """Move to ``new_state``, enforcing the transition table."""
        if new_state not in JOB_STATES:
            raise JobStateError(f"unknown job state {new_state!r}",
                                job_id=self.id)
        if new_state not in TRANSITIONS[self.state]:
            raise JobStateError(
                f"illegal transition {self.state!r} -> {new_state!r}",
                job_id=self.id)
        self.state = new_state

    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def lease_expired(self, now: float) -> bool:
        """True when leased/running past the lease expiry."""
        return (self.lease is not None
                and now >= float(self.lease.get("expires_at", 0.0)))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id, "tenant": self.tenant, "state": self.state,
            "spec": self.spec,
            "submitted_at": float(self.submitted_at),
            "updated_at": float(self.updated_at),
            "attempts": int(self.attempts),
            "requeues": int(self.requeues),
            "max_requeues": int(self.max_requeues),
            "crashes": int(self.crashes),
            "max_crashes": int(self.max_crashes),
            "crash_evidence": [dict(e) for e in self.crash_evidence],
            "lease": self.lease, "result": self.result, "error": self.error,
            "trace_id": self.trace_id, "span_id": self.span_id,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobRecord":
        try:
            record = cls(
                id=str(data["id"]), tenant=str(data.get("tenant", "default")),
                state=str(data["state"]), spec=dict(data.get("spec", {})),
                submitted_at=float(data.get("submitted_at", 0.0)),
                updated_at=float(data.get("updated_at", 0.0)),
                attempts=int(data.get("attempts", 0)),
                requeues=int(data.get("requeues", 0)),
                max_requeues=int(data.get("max_requeues", 2)),
                crashes=int(data.get("crashes", 0)),
                max_crashes=int(data.get("max_crashes", 3)),
                crash_evidence=[dict(e) for e in
                                data.get("crash_evidence", [])],
                lease=data.get("lease"), result=data.get("result"),
                error=data.get("error"),
                trace_id=(None if data.get("trace_id") is None
                          else str(data["trace_id"])),
                span_id=(None if data.get("span_id") is None
                         else str(data["span_id"])))
        except (KeyError, TypeError, ValueError) as exc:
            raise JobStateError(f"malformed job record: {exc}") from exc
        if record.state not in JOB_STATES:
            raise JobStateError(f"unknown job state {record.state!r}",
                                job_id=record.id)
        return record


def save_job(record: JobRecord, path: str | os.PathLike[str]) -> None:
    """Durably and atomically write one job record.

    Same protocol as :meth:`~repro.runtime.manifest.RunManifest.save`;
    the ``service.persist`` fault site fires *before* the write begins,
    so an injected crash there models losing the entire persist -- the
    on-disk record stays at the previous state and recovery requeues
    from it.
    """
    path = os.fspath(path)
    fault_point("service.persist", job=record.id, state=record.state)
    payload = record.to_dict()
    payload["format"] = JOB_FORMAT
    payload["version"] = JOB_VERSION
    payload["checksum"] = manifest_checksum(payload)
    data = (json.dumps(payload, indent=2, sort_keys=True) + "\n") \
        .encode("utf-8")
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(prefix=".job-", suffix=".json",
                               dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:
            pass  # directory fsync is best-effort (not all platforms)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_job(path: str | os.PathLike[str]) -> JobRecord:
    """Read and checksum-verify one job record.

    Raises :class:`~repro.errors.JobStateError` on unreadable, torn or
    tampered files; the queue's recovery pass quarantines those aside as
    ``.corrupt`` instead of crashing the whole service.
    """
    path = os.fspath(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise JobStateError(f"cannot read job record {path!r}: {exc}") \
            from exc
    if not isinstance(payload, dict) or payload.get("format") != JOB_FORMAT:
        raise JobStateError(f"{path!r} is not a job record")
    if payload.get("version") not in COMPATIBLE_JOB_VERSIONS:
        raise JobStateError(
            f"{path!r} has job-record version {payload.get('version')!r}, "
            f"this build reads versions {COMPATIBLE_JOB_VERSIONS}")
    stored = payload.get("checksum")
    if not isinstance(stored, str) or stored != manifest_checksum(payload):
        raise JobStateError(
            f"{path!r} fails its integrity check; the file is torn or "
            f"was edited by hand")
    body = {key: value for key, value in payload.items()
            if key not in ("format", "version", "checksum")}
    return JobRecord.from_dict(body)

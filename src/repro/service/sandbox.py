"""Process-isolated job execution: one job, one subprocess, hard budgets.

Thread workers (the default) share one process, so a single
pathological netlist -- a solver that hangs past its deadline hook, an
analysis that OOMs, a native-level crash inside a numpy kernel -- takes
down the whole front door and every in-flight job with it.  Process
isolation (``repro-ser serve --isolation process``) shrinks that blast
radius to one job:

* the job runs in a fresh subprocess under ``resource.setrlimit``
  memory/CPU budgets, so runaway allocation dies inside the sandbox
  instead of the service;
* a wall-clock watchdog escalates SIGTERM -> SIGKILL on a hung worker;
* the child shares the service's *disk* cache tier
  (:mod:`repro.cache`), so the warm-cache story survives isolation --
  a resubmitted circuit still reuses the expensive simulation results;
* the result crosses back through one atomically-written
  ``output.json``, and the claiming worker thread records it on the
  durable job record exactly as in thread mode -- the queue's
  exactly-once and digest-parity guarantees are isolation-agnostic.

A worker death is *classified*, not merely observed: the child reports
clean exceptions and OOMs itself (structured ``error``/``oom``
payloads), the parent attributes timeouts and signal deaths, and the
resulting evidence feeds :meth:`repro.service.queue.JobQueue.record_crash`
-- the poison-job budget that quarantines a job which keeps killing its
workers.

The child visits two fault sites before executing
(``service.worker.execute`` and the name-keyed family
``service.worker.job.<name>``), which is how the chaos harness injects
hangs, OOMs and segfaults into individual workers.  Because every child
starts with fresh injector state, the plan's seed is decorrelated per
job attempt (:func:`repro.faultplane.plan.derive_job_plan`) so
probabilistic worker faults do not fire in lockstep across attempts.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any

#: Exit code a sandbox child uses to report that the job's execution
#: died of a ``MemoryError`` (its rlimit refused an allocation).
#: Distinct from :data:`repro.faultplane.plan.KILL_EXIT_CODE` (86) so
#: the parent can tell an OOM from an injected hard kill.
OOM_EXIT_CODE = 84

INPUT_NAME = "input.json"
OUTPUT_NAME = "output.json"
STDERR_NAME = "stderr.log"

#: Characters of child stderr kept as crash evidence.
STDERR_TAIL_CHARS = 800

#: Seconds between SIGTERM and SIGKILL when the watchdog fires.
TERM_GRACE = 2.0


@dataclass(frozen=True)
class SandboxLimits:
    """Hard per-job budgets enforced on the worker subprocess.

    ``memory_mb`` caps the child's virtual address space
    (``RLIMIT_AS``), so it must leave room for the interpreter + numpy
    baseline (several hundred MiB) on top of the job's working set.
    ``cpu_seconds`` is ``RLIMIT_CPU`` (the kernel SIGKILLs past the
    hard limit); ``wall_seconds`` is the parent-side watchdog for jobs
    that hang without burning CPU.  ``None`` disables a budget.
    """

    memory_mb: float | None = None
    cpu_seconds: float | None = None
    wall_seconds: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {"memory_mb": self.memory_mb,
                "cpu_seconds": self.cpu_seconds,
                "wall_seconds": self.wall_seconds}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SandboxLimits":
        return cls(memory_mb=data.get("memory_mb"),
                   cpu_seconds=data.get("cpu_seconds"),
                   wall_seconds=data.get("wall_seconds"))


@dataclass
class SandboxOutcome:
    """What became of one sandboxed job execution.

    ``kind`` is one of:

    ``result``
        The child produced a result payload (which may itself be a
        deterministic pipeline failure, ``status == "failed:<stage>"``
        -- the worker routes that to terminal ``failed`` exactly as in
        thread mode).
    ``error``
        The child caught an ordinary exception and reported it cleanly
        -- infrastructure-flavored, routed to a budgeted requeue.
    ``oom`` / ``timeout`` / ``crash``
        The worker process died (rlimit OOM, watchdog kill, signal or
        unexplained exit).  ``evidence`` carries the post-mortem and
        the outcome feeds the job's crash budget.
    """

    kind: str
    result: dict[str, Any] | None = None
    error: dict[str, Any] | None = None
    evidence: dict[str, Any] = field(default_factory=dict)


def job_display_name(spec: dict[str, Any]) -> str:
    """The human name of a job spec (circuit row or inline name)."""
    return str(spec.get("circuit") or spec.get("name") or "inline")


def _write_json_atomic(path: str, payload: dict[str, Any]) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


# ----------------------------------------------------------------------
# Parent side: spawn, watch, classify
# ----------------------------------------------------------------------
def run_sandboxed(spec: dict[str, Any], defaults: Any, *,
                  job_id: str, attempt: int,
                  limits: SandboxLimits | None = None,
                  cache_dir: str | None = None,
                  python: str | None = None,
                  telemetry: dict[str, Any] | None = None
                  ) -> SandboxOutcome:
    """Execute one job spec in a fresh worker subprocess.

    ``defaults`` is the pool's
    :class:`~repro.service.workers.ExecutionDefaults`; ``attempt`` is
    the job's attempt count (decorrelates injected worker faults across
    retries).  ``telemetry`` (optional) is the trace handoff --
    ``{"path", "prefix", "trace", "parent"}`` -- that tells the child
    where to write its span shard and which parent span/trace id to
    hang its tree under; the *caller* absorbs the shard afterwards (the
    shard path must live outside the throwaway workdir).  Never raises
    for child misbehavior -- every way the child can die comes back as
    a classified :class:`SandboxOutcome`.
    """
    limits = limits or SandboxLimits()
    workdir = tempfile.mkdtemp(prefix=f"repro-sandbox-{job_id}-")
    try:
        _write_json_atomic(os.path.join(workdir, INPUT_NAME), {
            "spec": spec,
            "defaults": dataclasses.asdict(defaults),
            "limits": limits.to_dict(),
            "cache_dir": cache_dir,
            "job": {"id": job_id, "attempt": int(attempt),
                    "name": job_display_name(spec)},
            "telemetry": telemetry,
        })
        stderr_path = os.path.join(workdir, STDERR_NAME)
        env = dict(os.environ)
        # The child must import repro regardless of how the parent was
        # launched; prepend the package's own source root.
        src_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        argv = [python or sys.executable, "-m", "repro.service.sandbox",
                workdir]
        started = time.monotonic()
        timed_out = False
        with open(stderr_path, "wb") as err:
            proc = subprocess.Popen(argv, stdin=subprocess.DEVNULL,
                                    stdout=subprocess.DEVNULL,
                                    stderr=err, env=env)
            try:
                returncode = proc.wait(limits.wall_seconds)
            except subprocess.TimeoutExpired:
                timed_out = True
                proc.terminate()
                try:
                    returncode = proc.wait(TERM_GRACE)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    returncode = proc.wait()
        elapsed = time.monotonic() - started
        return _classify(workdir, returncode, timed_out, elapsed,
                         job_id=job_id, attempt=attempt)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _stderr_tail(workdir: str) -> str:
    try:
        with open(os.path.join(workdir, STDERR_NAME), "r",
                  encoding="utf-8", errors="replace") as handle:
            return handle.read()[-STDERR_TAIL_CHARS:]
    except OSError:
        return ""


def _read_output(workdir: str) -> dict[str, Any] | None:
    try:
        with open(os.path.join(workdir, OUTPUT_NAME), "r",
                  encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def _classify(workdir: str, returncode: int, timed_out: bool,
              elapsed: float, *, job_id: str,
              attempt: int) -> SandboxOutcome:
    """Turn a child's exit into a :class:`SandboxOutcome`.

    Output-file payloads win over exit codes (the output is written
    atomically, so if it exists it is complete and trustworthy);
    otherwise the parent attributes the death: watchdog timeout, OOM
    exit, signal, or an unexplained exit code.
    """
    def evidence(kind: str) -> dict[str, Any]:
        signal_name = None
        if returncode is not None and returncode < 0:
            try:
                signal_name = signal.Signals(-returncode).name
            except ValueError:
                signal_name = f"signal {-returncode}"
        return {"kind": kind, "exit_code": returncode,
                "signal": signal_name, "elapsed": round(elapsed, 3),
                "attempt": int(attempt), "job": job_id,
                "stderr_tail": _stderr_tail(workdir)}

    output = _read_output(workdir)
    if output is not None:
        if "result" in output:
            return SandboxOutcome(kind="result", result=output["result"])
        if "error" in output:
            return SandboxOutcome(kind="error", error=output["error"])
        if "oom" in output:
            report = evidence("oom")
            report.update(output["oom"])
            return SandboxOutcome(kind="oom", evidence=report)
    if returncode == OOM_EXIT_CODE:
        return SandboxOutcome(kind="oom", evidence=evidence("oom"))
    if timed_out:
        return SandboxOutcome(kind="timeout", evidence=evidence("timeout"))
    return SandboxOutcome(kind="crash", evidence=evidence("crash"))


# ----------------------------------------------------------------------
# Child side: rlimits, fault sites, execute, hand off
# ----------------------------------------------------------------------
def _apply_rlimits(limits: SandboxLimits) -> None:
    """Install the kernel-enforced budgets (POSIX only; no-op absent
    :mod:`resource`).  Called *after* the heavy imports, so the budget
    bounds growth beyond the interpreter + numpy baseline rather than
    preventing startup."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return
    if limits.memory_mb is not None:
        cap = int(limits.memory_mb * 1024 * 1024)
        try:
            resource.setrlimit(resource.RLIMIT_AS, (cap, cap))
        except (ValueError, OSError):  # pragma: no cover - tiny caps
            pass
    if limits.cpu_seconds is not None:
        soft = max(1, int(limits.cpu_seconds))
        try:
            resource.setrlimit(resource.RLIMIT_CPU, (soft, soft + 5))
        except (ValueError, OSError):  # pragma: no cover
            pass


def _install_child_faults(job_name: str, attempt: int) -> None:
    """Arm the env fault plan, decorrelated for this job attempt."""
    from ..faultplane import hooks
    from ..faultplane.plan import (ENV_STATS, FaultInjector,
                                   derive_job_plan, load_plan_from_env)

    plan = load_plan_from_env()
    if plan is None:
        return
    plan = derive_job_plan(plan, job_name, attempt)
    hooks.install(FaultInjector(plan,
                                stats_path=os.environ.get(ENV_STATS)))


def _start_child_telemetry(handoff: dict[str, Any] | None,
                           job: dict[str, Any]) -> tuple[Any, Any]:
    """Install the shard tracer described by the ``input.json`` handoff.

    Opens the child's root span (``job.sandbox``) with the *parent-side*
    ``job.execute`` span id as its explicit parent and the job's trace
    id, so the shard's whole tree re-roots correctly once the claiming
    worker absorbs it into the main trace.  Returns ``(None, None)``
    when no handoff came (tracing off in the service).
    """
    if not handoff or not handoff.get("path"):
        return None, None
    from ..telemetry import spans as telemetry

    tracer = telemetry.Tracer(handoff["path"],
                              prefix=str(handoff.get("prefix", "")),
                              meta={"kind": "sandbox",
                                    "job": job.get("id")})
    telemetry.install(tracer)
    span = tracer.begin("job.sandbox",
                        {"job": job.get("id"),
                         "attempt": job.get("attempt"),
                         "pid": os.getpid()},
                        parent=handoff.get("parent"),
                        trace=handoff.get("trace"))
    return tracer, span


def _stop_child_telemetry(tracer: Any, span: Any,
                          error: str | None = None) -> None:
    if tracer is None:
        return
    from ..telemetry import spans as telemetry

    try:
        if error is not None:
            span.attrs.setdefault("error", error)
        tracer.end(span)
        telemetry.uninstall()
        tracer.close()
    except Exception:
        pass  # telemetry must never change the child's exit protocol


def child_main(workdir: str) -> int:
    """Entry point of the worker subprocess (``-m repro.service.sandbox``).

    Protocol: read ``input.json``, apply rlimits, share the disk cache
    tier, visit the worker fault sites, execute, atomically write
    ``output.json``.  Exit 0 whenever an output was written (including
    clean ``error`` reports); :data:`OOM_EXIT_CODE` on MemoryError
    (best-effort evidence write first); any other death is attributed
    by the parent.
    """
    from .. import cache as analysis_cache
    from ..faultplane.hooks import fault_point
    from .workers import ExecutionDefaults, execute_job

    with open(os.path.join(workdir, INPUT_NAME), "r",
              encoding="utf-8") as handle:
        payload = json.load(handle)
    spec = payload["spec"]
    raw_defaults = dict(payload["defaults"])
    raw_defaults["algorithms"] = tuple(raw_defaults["algorithms"])
    defaults = ExecutionDefaults(**raw_defaults)
    limits = SandboxLimits.from_dict(payload.get("limits") or {})
    job = payload.get("job") or {}
    name = str(job.get("name", "inline"))
    attempt = int(job.get("attempt", 1))

    _apply_rlimits(limits)
    _install_child_faults(name, attempt)
    if payload.get("cache_dir"):
        analysis_cache.configure(payload["cache_dir"])

    output_path = os.path.join(workdir, OUTPUT_NAME)
    tracer, root_span = _start_child_telemetry(payload.get("telemetry"),
                                               job)
    try:
        fault_point("service.worker.execute", job=job.get("id"),
                    name=name, attempt=attempt)
        fault_point(f"service.worker.job.{name}", job=job.get("id"),
                    attempt=attempt)
        result = execute_job(spec, defaults)
    except MemoryError:
        # Drop the hog first so the evidence write itself can allocate.
        import gc

        gc.collect()
        _stop_child_telemetry(tracer, root_span, error="MemoryError")
        try:
            _write_json_atomic(output_path, {"oom": {
                "message": "worker MemoryError (memory budget "
                           f"{limits.memory_mb} MiB)"}})
        except (OSError, MemoryError):
            pass
        return OOM_EXIT_CODE
    except Exception as exc:
        _stop_child_telemetry(tracer, root_span,
                              error=type(exc).__name__)
        _write_json_atomic(output_path, {"error": {
            "type": type(exc).__name__, "message": str(exc)[:500]}})
        return 0
    _stop_child_telemetry(tracer, root_span)
    _write_json_atomic(output_path, {"result": result})
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(child_main(sys.argv[1]))

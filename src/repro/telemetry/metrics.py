"""The process-wide metrics registry: counters, gauges, histograms.

Unlike span tracing -- which is installed per run and writes a file --
the registry is always on: an increment is a plain attribute update, so
instrumented code never checks whether metrics are "enabled".  The suite
snapshots the registry around each circuit and stores the delta in
``report["perf"]["metrics"]``; the ``--metrics-out`` CLI flag dumps the
whole registry after a run.

Metric names are dotted strings (``cache.hits``,
``stage.seconds.solve:minobswin``); the Prometheus writer sanitizes
them to ``repro_cache_hits``-style identifiers.  Histograms use fixed
bucket bounds chosen at creation (default: latency seconds), so two
snapshots are always subtractable bucket-by-bucket.

JSON dump schema (``format: repro-metrics``, version 1)::

    {
      "format": "repro-metrics",
      "version": 1,
      "metrics": {
        "cache.hits":  {"type": "counter", "value": 12, "help": "..."},
        "suite.phi":   {"type": "gauge", "value": 8.25, "help": "..."},
        "stage.seconds.observability": {
          "type": "histogram", "buckets": [0.001, ...],
          "counts": [0, 2, ...], "sum": 0.83, "count": 5, "help": "..."
        }
      }
    }

The metric-name table lives in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any

from ..errors import TelemetryError

METRICS_FORMAT = "repro-metrics"
METRICS_VERSION = 1

#: Default histogram bounds: latencies in seconds, microbenchmark to
#: minutes.  One overflow bucket (+Inf) is implicit.
DEFAULT_SECONDS_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0,
                           5.0, 10.0, 60.0)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise TelemetryError("counters only go up")
        self.value += amount


class Gauge:
    """A value that goes up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bound cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise TelemetryError(
                "histogram bucket bounds must be a non-empty ascending "
                "sequence")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # +1: +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1


class MetricsRegistry:
    """Name -> metric, with get-or-create accessors and exports."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._help: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Get-or-create accessors
    # ------------------------------------------------------------------
    def _get(self, name: str, kind: type, factory) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, kind):
            raise TelemetryError(
                f"metric {name!r} is already registered as a "
                f"{type(metric).__name__}, not a {kind.__name__}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        if help:
            self._help.setdefault(name, help)
        return self._get(name, Counter, Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        if help:
            self._help.setdefault(name, help)
        return self._get(name, Gauge, Gauge)

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
                  help: str = "") -> Histogram:
        if help:
            self._help.setdefault(name, help)
        metric = self._get(name, Histogram, lambda: Histogram(buckets))
        if metric.bounds != tuple(float(b) for b in buckets):
            raise TelemetryError(
                f"histogram {name!r} is already registered with bounds "
                f"{metric.bounds}")
        return metric

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A point-in-time JSON-serializable dump of every metric."""
        metrics: dict[str, Any] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            entry: dict[str, Any] = {"help": self._help.get(name, "")}
            if isinstance(metric, Counter):
                entry.update(type="counter", value=metric.value)
            elif isinstance(metric, Gauge):
                entry.update(type="gauge", value=metric.value)
            else:
                entry.update(type="histogram",
                             buckets=list(metric.bounds),
                             counts=list(metric.counts),
                             sum=metric.sum, count=metric.count)
            metrics[name] = entry
        return {"format": METRICS_FORMAT, "version": METRICS_VERSION,
                "metrics": metrics}

    @staticmethod
    def delta(before: dict[str, Any],
              after: dict[str, Any]) -> dict[str, Any]:
        """Per-metric increments between two :meth:`snapshot` dumps.

        Counters and histograms subtract (a metric absent from
        ``before`` counts from zero); gauges report their ``after``
        value.  Metrics whose delta is all-zero are dropped, so the
        result is a compact "what happened in this window" record.
        """
        out: dict[str, Any] = {}
        prior = before.get("metrics", {})
        for name, entry in after.get("metrics", {}).items():
            base = prior.get(name, {})
            if entry["type"] == "counter":
                value = entry["value"] - base.get("value", 0)
                if value:
                    out[name] = value
            elif entry["type"] == "gauge":
                out[name] = entry["value"]
            else:
                count = entry["count"] - base.get("count", 0)
                if count:
                    base_counts = base.get("counts",
                                           [0] * len(entry["counts"]))
                    out[name] = {
                        "count": count,
                        "sum": entry["sum"] - base.get("sum", 0.0),
                        "counts": [a - b for a, b in
                                   zip(entry["counts"], base_counts)],
                    }
        return out

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every metric."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            prom = prometheus_name(name)
            help_text = self._help.get(name, "")
            if help_text:
                lines.append(f"# HELP {prom} {help_text}")
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {prom} counter")
                lines.append(f"{prom} {_fmt(metric.value)}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {prom} gauge")
                lines.append(f"{prom} {_fmt(metric.value)}")
            else:
                lines.append(f"# TYPE {prom} histogram")
                cumulative = 0
                for bound, count in zip(metric.bounds, metric.counts):
                    cumulative += count
                    lines.append(f'{prom}_bucket{{le="{_fmt(bound)}"}} '
                                 f"{cumulative}")
                cumulative += metric.counts[-1]
                lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
                lines.append(f"{prom}_sum {_fmt(metric.sum)}")
                lines.append(f"{prom}_count {metric.count}")
        return "\n".join(lines) + "\n"

    def write(self, path: str | os.PathLike[str]) -> None:
        """Dump the registry: Prometheus text for ``*.prom``, JSON else."""
        path = os.fspath(path)
        if path.endswith(".prom") or path.endswith(".txt"):
            payload = self.to_prometheus()
        else:
            payload = json.dumps(self.snapshot(), indent=2,
                                 sort_keys=True) + "\n"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload)

    def reset(self) -> None:
        """Drop every metric (test isolation hook)."""
        self._metrics.clear()
        self._help.clear()


def histogram_quantile(q: float, buckets: list[float],
                       counts: list[int]) -> float | None:
    """Estimate quantile ``q`` from a histogram snapshot entry.

    ``buckets``/``counts`` are a histogram's snapshot fields
    (non-cumulative per-bucket counts with the trailing +Inf overflow
    slot).  Linear interpolation within the winning bucket, Prometheus
    style; observations in the overflow bucket clamp to the last finite
    bound.  Returns ``None`` for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise TelemetryError(f"quantile must be in [0, 1], got {q!r}")
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    cumulative = 0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        if cumulative + count >= rank:
            if index >= len(buckets):   # +Inf overflow bucket
                return float(buckets[-1])
            lo = buckets[index - 1] if index else 0.0
            hi = buckets[index]
            fraction = (rank - cumulative) / count
            return lo + (hi - lo) * fraction
        cumulative += count
    return float(buckets[-1])


def prometheus_name(name: str) -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _fmt(value: float) -> str:
    if isinstance(value, int) or (isinstance(value, float)
                                  and value.is_integer()):
        return str(int(value))
    return repr(float(value))


#: The process-wide registry every instrumented layer writes to.
REGISTRY = MetricsRegistry()

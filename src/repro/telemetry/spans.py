"""Structured span tracing to append-only JSONL files.

A *span* is one named, timed region of work with free-form attributes
and a parent (the span open when it began) -- circuits, pipeline stages,
solver calls, individual MinObsWin iterations.  An *event* is a point in
time attached to the currently open span -- a cache load, a fault-plane
firing.  Spans are written when they *end*, so children precede their
parents in the file; readers reconstruct the tree from ``id``/``parent``.

Trace-file schema (``format: repro-trace``, version 1), one JSON object
per line::

    {"type": "trace", "format": "repro-trace", "version": 1,
     "clock": "perf_counter", "prefix": "", "wall_time": 1722849600.0,
     "meta": {...}}                                    // header record
    {"type": "span", "id": "3", "parent": "1", "name": "stage:initialize",
     "t0": 0.0123, "dur": 0.0041, "attrs": {"circuit": "s13207"}}
    {"type": "event", "id": "4", "parent": "3", "name": "cache.load",
     "t": 0.0130, "attrs": {"kind": "init", "hit": false}}

``t0``/``t``/``dur`` are monotonic seconds relative to the tracer's
creation (``time.perf_counter``); the header's ``wall_time`` anchors
them to the wall clock for humans.  Records may carry an optional
``trace`` key -- a request-scoped trace id (:func:`new_trace_id`) that
groups every span of one service job across threads, processes and
retries; readers treat records without it as belonging to the implicit
single trace of a CLI run.  Every record is written with a
single buffered ``write`` followed by a flush (one writer per file by
construction -- parallel workers get their own shard file), and the file
is ``fsync``\\ ed on :meth:`Tracer.close`, so a crash loses at most the
spans still open.

Installation mirrors :mod:`repro.faultplane.hooks`: a module-global
tracer that every instrumented call checks with a single ``None`` test.
With no tracer installed, :func:`span` returns a shared no-op context
manager and :func:`event` returns immediately -- the instrumented
pipeline stays bit-identical and within the <2 % overhead budget of
``benchmarks/bench_runtime_overhead.py``.

Parallel runs: each suite worker traces to
``<trace>.shard-NN.jsonl`` (:func:`shard_trace_path`) with span-id
prefix ``sNN-`` so ids stay globally unique, and the parent folds the
shards into the main trace with :func:`merge_shard_traces` in canonical
shard order -- records are copied verbatim, so parent/child ids are
preserved exactly.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Iterator

from ..errors import TelemetryError

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1


def new_trace_id() -> str:
    """A fresh request-scoped trace id (``t-`` + 16 hex chars)."""
    return "t-" + uuid.uuid4().hex[:16]


class _Span:
    """One open span (bookkeeping only; serialized on end)."""

    __slots__ = ("id", "parent", "name", "t0", "attrs", "trace")

    def __init__(self, span_id: str, parent: str | None, name: str,
                 t0: float, attrs: dict[str, Any],
                 trace: str | None = None):
        self.id = span_id
        self.parent = parent
        self.name = name
        self.t0 = t0
        self.attrs = attrs
        self.trace = trace


class Tracer:
    """Writes one JSONL trace file.

    Parameters
    ----------
    path:
        Trace file, opened in append mode (a header record is written on
        every open; readers treat the file as a record stream and accept
        multiple headers).
    prefix:
        Prepended to every span/event id -- parallel shard tracers use
        ``"sNN-"`` so merged ids never collide.
    meta:
        Free-form JSON-serializable run description for the header.

    Span stacks are *thread-local*: the service shares one tracer
    between HTTP handler threads and worker threads, and each thread
    nests its own spans without seeing the others'.  The write path is
    locked, so any thread may :meth:`begin`/:meth:`end`,
    :meth:`emit_span` or :meth:`event` safely.
    """

    def __init__(self, path: str | os.PathLike[str], prefix: str = "",
                 meta: dict[str, Any] | None = None):
        self.path = os.fspath(path)
        self.prefix = prefix
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._next_id = 1
        self._local = threading.local()
        self._closed = False
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._emit({
            "type": "trace", "format": TRACE_FORMAT,
            "version": TRACE_VERSION, "clock": "perf_counter",
            "prefix": prefix, "wall_time": time.time(),
            "meta": meta or {},
        })

    # ------------------------------------------------------------------
    # Clock and ids
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Monotonic seconds since this tracer was created."""
        return time.perf_counter() - self._epoch

    def _new_id(self) -> str:
        with self._lock:
            span_id = f"{self.prefix}{self._next_id}"
            self._next_id += 1
        return span_id

    @property
    def _stack(self) -> list[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_id(self) -> str | None:
        """Id of this thread's innermost open span, or ``None``."""
        stack = self._stack
        return stack[-1].id if stack else None

    def current_trace(self) -> str | None:
        """Trace id of this thread's innermost open span, or ``None``."""
        stack = self._stack
        return stack[-1].trace if stack else None

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def begin(self, name: str, attrs: dict[str, Any] | None = None, *,
              parent: str | None = None, trace: str | None = None,
              ) -> _Span:
        """Open a span as a child of this thread's innermost open span.

        ``parent`` overrides the stack-derived parent -- the service uses
        it to hang lifecycle spans off a job's durable root span even
        after the originating HTTP request span has closed.  ``trace``
        tags the span with a request-scoped trace id; when omitted it is
        inherited from the enclosing open span of this thread.
        """
        stack = self._stack
        if parent is None and stack:
            parent = stack[-1].id
        if trace is None and stack:
            trace = stack[-1].trace
        span = _Span(self._new_id(), parent, name, self.now(),
                     dict(attrs) if attrs else {}, trace)
        stack.append(span)
        return span

    def end(self, span: _Span) -> None:
        """Close ``span`` (and anything left open inside it) and emit."""
        stack = self._stack
        while stack:
            top = stack.pop()
            if top is span:
                break
        record = {"type": "span", "id": span.id, "parent": span.parent,
                  "name": span.name, "t0": span.t0,
                  "dur": self.now() - span.t0, "attrs": span.attrs}
        if span.trace is not None:
            record["trace"] = span.trace
        self._emit(record)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[_Span]:
        """Context manager around :meth:`begin`/:meth:`end`.

        An exception propagating out of the body is recorded as an
        ``error`` attribute (the exception type name) before re-raising.
        """
        span = self.begin(name, attrs)
        try:
            yield span
        except BaseException as exc:
            span.attrs.setdefault("error", type(exc).__name__)
            raise
        finally:
            self.end(span)

    def emit_span(self, name: str, t0: float,
                  attrs: dict[str, Any] | None = None, *,
                  parent: str | None = None,
                  trace: str | None = None) -> str:
        """Emit an already-finished span (hot-loop fast path).

        The caller supplies the start time (from :meth:`now`); the span
        is parented to this thread's innermost *open* span (or the
        explicit ``parent``) and never enters the stack, so thousands of
        solver-iteration spans cost one dict and one write each.
        Returns the span id.
        """
        span_id = self._new_id()
        stack = self._stack
        if parent is None and stack:
            parent = stack[-1].id
        if trace is None and stack:
            trace = stack[-1].trace
        record = {"type": "span", "id": span_id, "parent": parent,
                  "name": name, "t0": t0, "dur": self.now() - t0,
                  "attrs": attrs or {}}
        if trace is not None:
            record["trace"] = trace
        self._emit(record)
        return span_id

    def add_attrs(self, **attrs: Any) -> None:
        """Merge attributes into the innermost open span (no-op bare)."""
        stack = self._stack
        if stack:
            stack[-1].attrs.update(attrs)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def event(self, name: str, **attrs: Any) -> str:
        """Emit a point event attached to the innermost open span.

        Returns the event id (cited by, e.g., chaos scorecards).
        """
        event_id = self._new_id()
        record = {"type": "event", "id": event_id,
                  "parent": self.current_id(), "name": name,
                  "t": self.now(), "attrs": attrs}
        trace = self.current_trace()
        if trace is not None:
            record["trace"] = trace
        self._emit(record)
        return event_id

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def _emit(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with self._lock:
            if self._closed:
                return
            self._handle.write(line)
            self._handle.flush()

    def absorb(self, shard_path: str, delete: bool = True) -> int:
        """Fold a finished shard trace into this still-open trace.

        Unlike :func:`merge_shard_traces` -- which opens its own append
        handle and must not race a live writer -- ``absorb`` re-emits the
        shard's span/event lines verbatim through this tracer's own
        locked handle, so the service can merge a sandbox subprocess's
        shard while its tracer keeps writing.  Shard header records are
        dropped and torn lines skipped (a killed child loses only spans
        still open at death).  A missing shard is a no-op (the child
        died before tracing started).  Returns the record count.
        """
        try:
            with open(shard_path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return 0
        except OSError as exc:
            raise TelemetryError(
                f"cannot absorb shard trace {shard_path!r}: {exc}") from exc
        absorbed = 0
        with self._lock:
            if not self._closed:
                for line in lines:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn tail of a killed child
                    if not isinstance(record, dict) or \
                            record.get("type") == "trace":
                        continue
                    self._handle.write(line + "\n")
                    absorbed += 1
                self._handle.flush()
        if delete:
            try:
                os.unlink(shard_path)
            except OSError:
                pass
        return absorbed

    def close(self) -> None:
        """Flush, fsync and close the trace file (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except OSError:
                pass  # durability is best-effort on exotic filesystems
            self._handle.close()


# ----------------------------------------------------------------------
# The process-global tracer (mirrors repro.faultplane.hooks)
# ----------------------------------------------------------------------

_TRACER: Tracer | None = None


class _NoopSpan:
    """Shared do-nothing context manager for the tracing-off fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NOOP = _NoopSpan()


def active() -> Tracer | None:
    """The installed tracer, or ``None`` (tracing off)."""
    return _TRACER


def install(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` globally; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def uninstall() -> Tracer | None:
    """Remove any installed tracer; returns it."""
    return install(None)


@contextmanager
def installed(tracer: Tracer | None) -> Iterator[Tracer | None]:
    """Context manager: install ``tracer``, restore the previous one."""
    previous = install(tracer)
    try:
        yield tracer
    finally:
        install(previous)


def span(name: str, **attrs: Any):
    """Open a span on the installed tracer (shared no-op when off)."""
    if _TRACER is None:
        return _NOOP
    return _TRACER.span(name, **attrs)


def event(name: str, **attrs: Any) -> str | None:
    """Emit an event on the installed tracer; returns its id (or None)."""
    if _TRACER is None:
        return None
    return _TRACER.event(name, **attrs)


def current_span_id() -> str | None:
    """Id of the innermost open span of the installed tracer, if any."""
    return _TRACER.current_id() if _TRACER is not None else None


def add_attrs(**attrs: Any) -> None:
    """Merge attributes into the current span of the installed tracer."""
    if _TRACER is not None:
        _TRACER.add_attrs(**attrs)


# ----------------------------------------------------------------------
# Shard traces (parallel suite workers)
# ----------------------------------------------------------------------


def shard_trace_path(trace_path: str, shard_index: int) -> str:
    """Trace file of one worker shard (sibling of the main trace)."""
    return f"{trace_path}.shard-{shard_index:02d}.jsonl"


def shard_trace_paths(trace_path: str) -> list[str]:
    """Existing shard trace files of a main trace path, sorted."""
    import glob

    return sorted(glob.glob(glob.escape(trace_path) + ".shard-*.jsonl"))


def merge_shard_traces(trace_path: str,
                       shard_files: list[str] | None = None) -> list[str]:
    """Fold worker shard traces into the main trace file.

    Shard records are appended verbatim in shard order (canonical:
    sorted file names), so span/event ids -- already unique via the
    per-shard ``sNN-`` prefix -- and parent/child relations survive the
    merge exactly.  Shard *header* records are dropped (the main file
    has its own); unparseable lines are skipped (a shard torn by a
    worker crash loses only its last, partial line).  Merged shard
    files are deleted.  Returns the merged file paths.
    """
    if shard_files is None:
        shard_files = shard_trace_paths(trace_path)
    if not shard_files:
        return []
    exists = os.path.exists(trace_path) and os.path.getsize(trace_path) > 0
    with open(trace_path, "a", encoding="utf-8") as out:
        if not exists:
            header = {"type": "trace", "format": TRACE_FORMAT,
                      "version": TRACE_VERSION, "clock": "perf_counter",
                      "prefix": "", "wall_time": time.time(),
                      "meta": {"merged": True}}
            out.write(json.dumps(header, sort_keys=True,
                                 separators=(",", ":")) + "\n")
        for path in sorted(shard_files):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            record = json.loads(line)
                        except json.JSONDecodeError:
                            continue  # torn tail of a crashed worker
                        if not isinstance(record, dict) or \
                                record.get("type") == "trace":
                            continue
                        out.write(line + "\n")
            except OSError as exc:
                raise TelemetryError(
                    f"cannot merge shard trace {path!r}: {exc}") from exc
        out.flush()
        os.fsync(out.fileno())
    for path in shard_files:
        try:
            os.unlink(path)
        except OSError:
            pass
    return list(shard_files)

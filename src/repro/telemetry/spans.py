"""Structured span tracing to append-only JSONL files.

A *span* is one named, timed region of work with free-form attributes
and a parent (the span open when it began) -- circuits, pipeline stages,
solver calls, individual MinObsWin iterations.  An *event* is a point in
time attached to the currently open span -- a cache load, a fault-plane
firing.  Spans are written when they *end*, so children precede their
parents in the file; readers reconstruct the tree from ``id``/``parent``.

Trace-file schema (``format: repro-trace``, version 1), one JSON object
per line::

    {"type": "trace", "format": "repro-trace", "version": 1,
     "clock": "perf_counter", "prefix": "", "wall_time": 1722849600.0,
     "meta": {...}}                                    // header record
    {"type": "span", "id": "3", "parent": "1", "name": "stage:initialize",
     "t0": 0.0123, "dur": 0.0041, "attrs": {"circuit": "s13207"}}
    {"type": "event", "id": "4", "parent": "3", "name": "cache.load",
     "t": 0.0130, "attrs": {"kind": "init", "hit": false}}

``t0``/``t``/``dur`` are monotonic seconds relative to the tracer's
creation (``time.perf_counter``); the header's ``wall_time`` anchors
them to the wall clock for humans.  Every record is written with a
single buffered ``write`` followed by a flush (one writer per file by
construction -- parallel workers get their own shard file), and the file
is ``fsync``\\ ed on :meth:`Tracer.close`, so a crash loses at most the
spans still open.

Installation mirrors :mod:`repro.faultplane.hooks`: a module-global
tracer that every instrumented call checks with a single ``None`` test.
With no tracer installed, :func:`span` returns a shared no-op context
manager and :func:`event` returns immediately -- the instrumented
pipeline stays bit-identical and within the <2 % overhead budget of
``benchmarks/bench_runtime_overhead.py``.

Parallel runs: each suite worker traces to
``<trace>.shard-NN.jsonl`` (:func:`shard_trace_path`) with span-id
prefix ``sNN-`` so ids stay globally unique, and the parent folds the
shards into the main trace with :func:`merge_shard_traces` in canonical
shard order -- records are copied verbatim, so parent/child ids are
preserved exactly.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

from ..errors import TelemetryError

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1


class _Span:
    """One open span (bookkeeping only; serialized on end)."""

    __slots__ = ("id", "parent", "name", "t0", "attrs")

    def __init__(self, span_id: str, parent: str | None, name: str,
                 t0: float, attrs: dict[str, Any]):
        self.id = span_id
        self.parent = parent
        self.name = name
        self.t0 = t0
        self.attrs = attrs


class Tracer:
    """Writes one JSONL trace file.

    Parameters
    ----------
    path:
        Trace file, opened in append mode (a header record is written on
        every open; readers treat the file as a record stream and accept
        multiple headers).
    prefix:
        Prepended to every span/event id -- parallel shard tracers use
        ``"sNN-"`` so merged ids never collide.
    meta:
        Free-form JSON-serializable run description for the header.

    The span stack is owned by the thread that runs the pipeline; the
    write path is locked so helper threads may still :meth:`emit_span`
    or :meth:`event` safely.
    """

    def __init__(self, path: str | os.PathLike[str], prefix: str = "",
                 meta: dict[str, Any] | None = None):
        self.path = os.fspath(path)
        self.prefix = prefix
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._next_id = 1
        self._stack: list[_Span] = []
        self._closed = False
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._emit({
            "type": "trace", "format": TRACE_FORMAT,
            "version": TRACE_VERSION, "clock": "perf_counter",
            "prefix": prefix, "wall_time": time.time(),
            "meta": meta or {},
        })

    # ------------------------------------------------------------------
    # Clock and ids
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Monotonic seconds since this tracer was created."""
        return time.perf_counter() - self._epoch

    def _new_id(self) -> str:
        with self._lock:
            span_id = f"{self.prefix}{self._next_id}"
            self._next_id += 1
        return span_id

    def current_id(self) -> str | None:
        """Id of the innermost open span, or ``None``."""
        return self._stack[-1].id if self._stack else None

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def begin(self, name: str, attrs: dict[str, Any] | None = None,
              ) -> _Span:
        """Open a span as a child of the innermost open span."""
        span = _Span(self._new_id(), self.current_id(), name, self.now(),
                     dict(attrs) if attrs else {})
        self._stack.append(span)
        return span

    def end(self, span: _Span) -> None:
        """Close ``span`` (and anything left open inside it) and emit."""
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self._emit({"type": "span", "id": span.id, "parent": span.parent,
                    "name": span.name, "t0": span.t0,
                    "dur": self.now() - span.t0, "attrs": span.attrs})

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[_Span]:
        """Context manager around :meth:`begin`/:meth:`end`.

        An exception propagating out of the body is recorded as an
        ``error`` attribute (the exception type name) before re-raising.
        """
        span = self.begin(name, attrs)
        try:
            yield span
        except BaseException as exc:
            span.attrs.setdefault("error", type(exc).__name__)
            raise
        finally:
            self.end(span)

    def emit_span(self, name: str, t0: float,
                  attrs: dict[str, Any] | None = None) -> str:
        """Emit an already-finished span (hot-loop fast path).

        The caller supplies the start time (from :meth:`now`); the span
        is parented to the innermost *open* span and never enters the
        stack, so thousands of solver-iteration spans cost one dict and
        one write each.  Returns the span id.
        """
        span_id = self._new_id()
        self._emit({"type": "span", "id": span_id,
                    "parent": self.current_id(), "name": name, "t0": t0,
                    "dur": self.now() - t0, "attrs": attrs or {}})
        return span_id

    def add_attrs(self, **attrs: Any) -> None:
        """Merge attributes into the innermost open span (no-op bare)."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def event(self, name: str, **attrs: Any) -> str:
        """Emit a point event attached to the innermost open span.

        Returns the event id (cited by, e.g., chaos scorecards).
        """
        event_id = self._new_id()
        self._emit({"type": "event", "id": event_id,
                    "parent": self.current_id(), "name": name,
                    "t": self.now(), "attrs": attrs})
        return event_id

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def _emit(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with self._lock:
            if self._closed:
                return
            self._handle.write(line)
            self._handle.flush()

    def close(self) -> None:
        """Flush, fsync and close the trace file (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except OSError:
                pass  # durability is best-effort on exotic filesystems
            self._handle.close()


# ----------------------------------------------------------------------
# The process-global tracer (mirrors repro.faultplane.hooks)
# ----------------------------------------------------------------------

_TRACER: Tracer | None = None


class _NoopSpan:
    """Shared do-nothing context manager for the tracing-off fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NOOP = _NoopSpan()


def active() -> Tracer | None:
    """The installed tracer, or ``None`` (tracing off)."""
    return _TRACER


def install(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` globally; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def uninstall() -> Tracer | None:
    """Remove any installed tracer; returns it."""
    return install(None)


@contextmanager
def installed(tracer: Tracer | None) -> Iterator[Tracer | None]:
    """Context manager: install ``tracer``, restore the previous one."""
    previous = install(tracer)
    try:
        yield tracer
    finally:
        install(previous)


def span(name: str, **attrs: Any):
    """Open a span on the installed tracer (shared no-op when off)."""
    if _TRACER is None:
        return _NOOP
    return _TRACER.span(name, **attrs)


def event(name: str, **attrs: Any) -> str | None:
    """Emit an event on the installed tracer; returns its id (or None)."""
    if _TRACER is None:
        return None
    return _TRACER.event(name, **attrs)


def current_span_id() -> str | None:
    """Id of the innermost open span of the installed tracer, if any."""
    return _TRACER.current_id() if _TRACER is not None else None


def add_attrs(**attrs: Any) -> None:
    """Merge attributes into the current span of the installed tracer."""
    if _TRACER is not None:
        _TRACER.add_attrs(**attrs)


# ----------------------------------------------------------------------
# Shard traces (parallel suite workers)
# ----------------------------------------------------------------------


def shard_trace_path(trace_path: str, shard_index: int) -> str:
    """Trace file of one worker shard (sibling of the main trace)."""
    return f"{trace_path}.shard-{shard_index:02d}.jsonl"


def shard_trace_paths(trace_path: str) -> list[str]:
    """Existing shard trace files of a main trace path, sorted."""
    import glob

    return sorted(glob.glob(glob.escape(trace_path) + ".shard-*.jsonl"))


def merge_shard_traces(trace_path: str,
                       shard_files: list[str] | None = None) -> list[str]:
    """Fold worker shard traces into the main trace file.

    Shard records are appended verbatim in shard order (canonical:
    sorted file names), so span/event ids -- already unique via the
    per-shard ``sNN-`` prefix -- and parent/child relations survive the
    merge exactly.  Shard *header* records are dropped (the main file
    has its own); unparseable lines are skipped (a shard torn by a
    worker crash loses only its last, partial line).  Merged shard
    files are deleted.  Returns the merged file paths.
    """
    if shard_files is None:
        shard_files = shard_trace_paths(trace_path)
    if not shard_files:
        return []
    exists = os.path.exists(trace_path) and os.path.getsize(trace_path) > 0
    with open(trace_path, "a", encoding="utf-8") as out:
        if not exists:
            header = {"type": "trace", "format": TRACE_FORMAT,
                      "version": TRACE_VERSION, "clock": "perf_counter",
                      "prefix": "", "wall_time": time.time(),
                      "meta": {"merged": True}}
            out.write(json.dumps(header, sort_keys=True,
                                 separators=(",", ":")) + "\n")
        for path in sorted(shard_files):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            record = json.loads(line)
                        except json.JSONDecodeError:
                            continue  # torn tail of a crashed worker
                        if not isinstance(record, dict) or \
                                record.get("type") == "trace":
                            continue
                        out.write(line + "\n")
            except OSError as exc:
                raise TelemetryError(
                    f"cannot merge shard trace {path!r}: {exc}") from exc
        out.flush()
        os.fsync(out.fileno())
    for path in shard_files:
        try:
            os.unlink(path)
        except OSError:
            pass
    return list(shard_files)

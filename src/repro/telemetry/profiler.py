"""Zero-dependency periodic stack-sampling profiler.

A daemon thread wakes every ``interval`` seconds, snapshots every other
thread's Python stack via :func:`sys._current_frames`, and accumulates
*collapsed stacks* -- ``ThreadName;module.func;module.func;...`` strings,
root frame first -- into a counts dict.  Sampling is statistical: a
function's share of samples approximates its share of wall time, which
is exactly the attribution the flat-core work needs (where does
ELW/SER time go: IntervalSet arithmetic, numpy kernels, or glue?).

The output is the Brendan-Gregg collapsed-stack format plus a comment
header, so it both feeds ``repro-ser trace flame`` (rendered as a text
flame trie) and pastes straight into external flamegraph tooling::

    # repro-profile 1
    # interval 0.01
    # samples 1234
    # wall_time 1722849600.0
    MainThread;repro.cli.main;repro.runtime.suite.run_suite;... 87
    worker-0;repro.service.workers._run;... 41

The profiler never inspects its own sampler thread, holds no locks
while sampling (``sys._current_frames`` is a point-in-time snapshot
taken under the GIL) and is entirely off -- not even constructed --
unless ``--profile`` is passed, so the disabled path costs nothing.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any, Iterator, TextIO

from ..errors import TelemetryError

PROFILE_FORMAT = "repro-profile"
PROFILE_VERSION = 1

#: Default sampling period in seconds (100 Hz).
DEFAULT_INTERVAL = 0.01


def _format_frame(frame: Any) -> str:
    module = frame.f_globals.get("__name__", "?")
    return f"{module}.{frame.f_code.co_name}"


class StackProfiler:
    """Samples all live threads into collapsed-stack counts.

    Usable as a context manager::

        with StackProfiler(interval=0.01) as profiler:
            ...  # workload
        profiler.write("run.prof")
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL):
        if interval <= 0:
            raise TelemetryError(
                f"profiler interval must be positive, got {interval!r}")
        self.interval = float(interval)
        self._counts: dict[str, int] = {}
        self._samples = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise TelemetryError("profiler is already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "StackProfiler":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _run(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.wait(self.interval):
            self._sample(own_id)

    def _sample(self, own_id: int) -> None:
        names = {t.ident: t.name for t in threading.enumerate()}
        frames = sys._current_frames()
        with self._lock:
            self._samples += 1
            for thread_id, frame in frames.items():
                if thread_id == own_id:
                    continue
                parts = []
                while frame is not None:
                    parts.append(_format_frame(frame))
                    frame = frame.f_back
                parts.append(names.get(thread_id, f"thread-{thread_id}"))
                stack = ";".join(reversed(parts))
                self._counts[stack] = self._counts.get(stack, 0) + 1

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def samples(self) -> int:
        with self._lock:
            return self._samples

    def counts(self) -> dict[str, int]:
        """A copy of the collapsed-stack -> sample-count table."""
        with self._lock:
            return dict(self._counts)

    def write(self, path: str | os.PathLike[str]) -> None:
        """Write the header + collapsed-stack lines (sorted, atomic-ish)."""
        path = os.fspath(path)
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with self._lock:
            counts = dict(self._counts)
            samples = self._samples
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(f"# {PROFILE_FORMAT} {PROFILE_VERSION}\n")
            handle.write(f"# interval {self.interval}\n")
            handle.write(f"# samples {samples}\n")
            handle.write(f"# wall_time {time.time()}\n")
            for stack in sorted(counts):
                handle.write(f"{stack} {counts[stack]}\n")
            handle.flush()


# ----------------------------------------------------------------------
# Reading and rendering
# ----------------------------------------------------------------------


def is_profile_file(path: str | os.PathLike[str]) -> bool:
    """True when ``path`` starts with the collapsed-profile header."""
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            first = handle.readline()
    except OSError:
        return False
    return first.startswith(f"# {PROFILE_FORMAT}")


def load_profile(path: str | os.PathLike[str]) -> dict[str, Any]:
    """Parse a collapsed-stack profile file.

    Returns ``{"meta": {...}, "counts": {stack: n}, "total": n}``.
    Raises :class:`TelemetryError` on an unreadable file or missing
    header; malformed stack lines are skipped (torn tails tolerated,
    same contract as the trace reader).
    """
    try:
        handle: TextIO = open(path, "r", encoding="utf-8",
                              errors="replace")
    except OSError as exc:
        raise TelemetryError(f"cannot read profile {path!r}: {exc}") from exc
    meta: dict[str, Any] = {}
    counts: dict[str, int] = {}
    with handle:
        first = handle.readline()
        if not first.startswith(f"# {PROFILE_FORMAT}"):
            raise TelemetryError(
                f"{os.fspath(path)!r} is not a {PROFILE_FORMAT} file")
        for line in handle:
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                fields = line[1:].split(None, 1)
                if len(fields) == 2:
                    meta[fields[0]] = fields[1]
                continue
            stack, _, count = line.rpartition(" ")
            if not stack or not count.isdigit():
                continue  # torn or malformed line
            counts[stack] = counts.get(stack, 0) + int(count)
    return {"meta": meta, "counts": counts,
            "total": sum(counts.values())}


def _trie(counts: dict[str, int]) -> dict[str, Any]:
    root: dict[str, Any] = {}
    for stack, count in counts.items():
        node = root
        for part in stack.split(";"):
            entry = node.setdefault(part, {"count": 0, "children": {}})
            entry["count"] += count
            node = entry["children"]
    return root


def _render(node: dict[str, Any], total: int, depth: int,
            max_depth: int | None, lines: list[str]) -> None:
    ranked = sorted(node.items(), key=lambda kv: (-kv[1]["count"], kv[0]))
    for name, entry in ranked:
        share = 100.0 * entry["count"] / total if total else 0.0
        lines.append(f"{'  ' * depth}{name}  {entry['count']} "
                     f"({share:.1f}%)")
        if max_depth is None or depth + 1 < max_depth:
            _render(entry["children"], total, depth + 1, max_depth, lines)


def render_profile(profile: dict[str, Any],
                   max_depth: int | None = None) -> str:
    """Text flame view of a loaded profile: an indented sample trie.

    Siblings are ordered by sample count; every line shows absolute
    samples and the share of all samples, so hot paths read straight
    down the left edge.
    """
    total = profile["total"]
    lines = [f"profile  samples {total}  "
             f"interval {profile['meta'].get('interval', '?')}s"]
    if total == 0:
        lines.append("  (no samples)")
        return "\n".join(lines) + "\n"
    _render(_trie(profile["counts"]), total, 1, max_depth, lines)
    return "\n".join(lines) + "\n"

"""Reading and rendering trace files: the ``repro-ser trace`` backend.

Three views over one trace JSONL file (schema in
:mod:`repro.telemetry.spans`):

* :func:`summarize_trace` -- per-circuit stage breakdown plus aggregate
  stage totals and solver-iteration counts; the view the CI smoke job
  greps for stage names.
* :func:`top_spans` -- span names ranked by *self* time (duration minus
  child durations), the critical-path table.
* :func:`flame` -- an indented text flame of the span tree, with long
  runs of identical siblings (solver iterations) collapsed.

Spans are written when they end, so the file order is children-first;
:func:`build_tree` reconstructs the forest from ``id``/``parent``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

from ..errors import TelemetryError


@dataclass
class SpanNode:
    """One span with its resolved children (sorted by start time)."""

    id: str
    parent: str | None
    name: str
    t0: float
    dur: float
    attrs: dict[str, Any]
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def self_time(self) -> float:
        return max(0.0, self.dur - sum(c.dur for c in self.children))


@dataclass
class Trace:
    """A loaded trace file: headers, spans and events in file order.

    ``skipped`` counts unparsable or unknown-type lines the loader
    tolerated -- torn tails and interior tears from killed/restarted
    service processes appending to one file.
    """

    headers: list[dict[str, Any]]
    spans: list[dict[str, Any]]
    events: list[dict[str, Any]]
    skipped: int = 0

    @property
    def roots(self) -> list[SpanNode]:
        return build_tree(self.spans)


def load_trace(path: str | os.PathLike[str]) -> Trace:
    """Parse a trace JSONL file, leniently.

    Accepts multiple header records (append-mode reopens and shard
    merges produce them).  Malformed lines and unknown record types are
    *skipped and counted* (``Trace.skipped``) wherever they appear: a
    service killed mid-write and restarted appends after the tear, so a
    torn line can sit anywhere in the file, and future record types
    must not break old readers.  Only an unreadable file or a file with
    no header at all raises :class:`TelemetryError`.
    """
    path = os.fspath(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise TelemetryError(f"cannot read trace {path!r}: {exc}") from exc
    headers: list[dict[str, Any]] = []
    spans: list[dict[str, Any]] = []
    events: list[dict[str, Any]] = []
    skipped = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            skipped += 1  # torn line (kill mid-write, anywhere in file)
            continue
        kind = record.get("type") if isinstance(record, dict) else None
        if kind == "trace":
            headers.append(record)
        elif kind == "span":
            spans.append(record)
        elif kind == "event":
            events.append(record)
        else:
            skipped += 1  # unknown record type: forward compatibility
    if not headers:
        raise TelemetryError(f"{path}: not a repro-trace file (no header)")
    return Trace(headers=headers, spans=spans, events=events,
                 skipped=skipped)


def filter_trace(trace: Trace, key: str) -> Trace:
    """Restrict a multi-job trace to one job: ``key`` is a trace id
    (``t-...``) or a job id (``j-...``).

    A job id resolves to the trace ids its lifecycle spans carry, so
    either handle selects the same merged span tree (the HTTP request
    span, every attempt's lifecycle spans, and the sandbox subtree).
    """
    traces = {key}
    for span in trace.spans:
        if span.get("attrs", {}).get("job") == key and span.get("trace"):
            traces.add(span["trace"])

    def keep(record: dict[str, Any]) -> bool:
        return record.get("trace") in traces \
            or record.get("attrs", {}).get("job") == key
    return Trace(headers=trace.headers,
                 spans=[s for s in trace.spans if keep(s)],
                 events=[e for e in trace.events if keep(e)],
                 skipped=trace.skipped)


def build_tree(spans: list[dict[str, Any]]) -> list[SpanNode]:
    """Reconstruct the span forest; roots sorted by start time.

    A span whose parent never closed (crash) becomes a root.
    """
    nodes = {record["id"]: SpanNode(
        id=record["id"], parent=record.get("parent"),
        name=record["name"], t0=record["t0"], dur=record["dur"],
        attrs=record.get("attrs", {})) for record in spans}
    roots: list[SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.parent) if node.parent is not None else None
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: child.t0)
    roots.sort(key=lambda node: node.t0)
    return roots


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1e3:7.2f}ms"


def _walk(nodes: list[SpanNode]):
    for node in nodes:
        yield node
        yield from _walk(node.children)


def _service_job_lines(trace: Trace) -> list[str]:
    """The per-job service section: one row per trace id.

    A service trace holds many jobs (and several attempts per job);
    grouping by the ``trace`` record key -- not by file position --
    gives each job its queue-time vs execution-time breakdown no matter
    how interleaved the worker threads wrote their spans.
    """
    jobs: dict[str, dict[str, Any]] = {}
    order: list[str] = []
    for span in trace.spans:
        trace_id = span.get("trace")
        if trace_id is None:
            continue
        info = jobs.get(trace_id)
        if info is None:
            info = jobs[trace_id] = {
                "job": None, "queue": 0.0, "execute": 0.0,
                "persist": 0.0, "attempts": 0, "spans": 0, "errors": 0}
            order.append(trace_id)
        info["spans"] += 1
        attrs = span.get("attrs", {})
        if info["job"] is None and attrs.get("job"):
            info["job"] = str(attrs["job"])
        name = span.get("name")
        if name == "queue.wait":
            info["queue"] += span.get("dur", 0.0)
        elif name == "job.execute":
            info["execute"] += span.get("dur", 0.0)
        elif name == "job.persist":
            info["persist"] += span.get("dur", 0.0)
        attempt = attrs.get("attempt")
        if isinstance(attempt, int):
            info["attempts"] = max(info["attempts"], attempt)
        if attrs.get("error"):
            info["errors"] += 1
    if not jobs:
        return []
    lines = ["service jobs"]
    for trace_id in order:
        info = jobs[trace_id]
        extra = f"  errors {info['errors']}" if info["errors"] else ""
        lines.append(
            f"  {info['job'] or '(no job)':<16} trace {trace_id}  "
            f"attempts {info['attempts']}  "
            f"queue {_fmt_seconds(info['queue']).strip()}  "
            f"execute {_fmt_seconds(info['execute']).strip()}  "
            f"persist {_fmt_seconds(info['persist']).strip()}  "
            f"spans {info['spans']}{extra}")
    lines.append("")
    return lines


def summarize_trace(trace: Trace) -> str:
    """Per-circuit stage table plus aggregate stage/solver totals.

    Multi-job service traces additionally get the per-job section
    (:func:`_service_job_lines`) grouped by trace id -- one file can
    hold any number of jobs, attempts and service restarts.
    """
    roots = trace.roots
    lines: list[str] = _service_job_lines(trace)
    circuits = [node for node in _walk(roots) if node.name == "circuit"]
    stage_totals: dict[str, tuple[int, float]] = {}
    iteration_totals: dict[str, int] = {}

    def tally(stage: SpanNode) -> None:
        count, total = stage_totals.get(stage.name, (0, 0.0))
        stage_totals[stage.name] = (count + 1, total + stage.dur)

    for circuit in circuits:
        label = circuit.attrs.get("circuit", circuit.id)
        lines.append(f"circuit {label}  total {_fmt_seconds(circuit.dur)}")
        for stage in circuit.children:
            if not stage.name.startswith("stage:"):
                continue
            tally(stage)
            iterations = sum(1 for node in _walk(stage.children)
                             if node.name == "solver.iteration")
            extra = ""
            if iterations:
                key = stage.name
                iteration_totals[key] = iteration_totals.get(key, 0) \
                    + iterations
                extra = f"  iterations {iterations}"
            lines.append(f"  {stage.name[6:]:<20}"
                         f"{_fmt_seconds(stage.dur)}{extra}")
        lines.append("")
    if not circuits:
        # Stage spans may exist without circuit parents (partial trace).
        for node in _walk(roots):
            if node.name.startswith("stage:"):
                tally(node)
    lines.append("stage totals")
    if stage_totals:
        for name in sorted(stage_totals):
            count, total = stage_totals[name]
            extra = ""
            if name in iteration_totals:
                extra = f"  iterations {iteration_totals[name]}"
            lines.append(f"  {name[6:]:<20}{_fmt_seconds(total)}"
                         f"  x{count}{extra}")
    else:
        lines.append("  (no stage spans)")
    n_events = len(trace.events)
    lines.append(f"spans {len(trace.spans)}  events {n_events}")
    return "\n".join(lines)


def top_spans(trace: Trace, limit: int = 15) -> str:
    """Span names ranked by aggregate self time (critical-path table)."""
    totals: dict[str, tuple[int, float, float]] = {}
    for node in _walk(trace.roots):
        count, self_total, dur_total = totals.get(node.name, (0, 0.0, 0.0))
        totals[node.name] = (count + 1, self_total + node.self_time,
                             dur_total + node.dur)
    ranked = sorted(totals.items(), key=lambda item: -item[1][1])[:limit]
    width = max((len(name) for name, _ in ranked), default=4)
    lines = [f"{'span':<{width}}  {'count':>7}  {'self':>10}  "
             f"{'total':>10}"]
    for name, (count, self_total, dur_total) in ranked:
        lines.append(f"{name:<{width}}  {count:>7}  "
                     f"{_fmt_seconds(self_total):>10}  "
                     f"{_fmt_seconds(dur_total):>10}")
    return "\n".join(lines)


#: Identical-name sibling runs longer than this collapse to one line.
FLAME_COLLAPSE_THRESHOLD = 3


def flame(trace: Trace, max_depth: int | None = None) -> str:
    """Indented text flame of the span tree.

    Runs of more than :data:`FLAME_COLLAPSE_THRESHOLD` identical-name
    siblings (solver iterations, cache probes) collapse into a single
    ``name xN`` line carrying their summed duration.
    """
    lines: list[str] = []

    def render(nodes: list[SpanNode], depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        index = 0
        while index < len(nodes):
            node = nodes[index]
            run_end = index
            while run_end + 1 < len(nodes) and \
                    nodes[run_end + 1].name == node.name:
                run_end += 1
            run = nodes[index:run_end + 1]
            indent = "  " * depth
            if len(run) > FLAME_COLLAPSE_THRESHOLD:
                total = sum(sibling.dur for sibling in run)
                lines.append(f"{indent}{node.name} x{len(run)}  "
                             f"{_fmt_seconds(total)}")
            else:
                for sibling in run:
                    detail = ""
                    circuit = sibling.attrs.get("circuit")
                    if circuit:
                        detail = f"  [{circuit}]"
                    error = sibling.attrs.get("error")
                    if error:
                        detail += f"  !{error}"
                    lines.append(f"{indent}{sibling.name}  "
                                 f"{_fmt_seconds(sibling.dur)}{detail}")
                    render(sibling.children, depth + 1)
            index = run_end + 1

    render(trace.roots, 0)
    return "\n".join(lines) if lines else "(empty trace)"

"""The unified telemetry plane: span tracing and a metrics registry.

The four load-bearing runtime layers (resilient executor, fault plane,
sharded parallel suite, analysis cache) used to report through ad-hoc
channels -- stage clocks in ``report.perf``, cache ``stats.delta``
counters, chaos scorecards, batched worker progress lines.  This package
is the single substrate they all feed:

* :mod:`repro.telemetry.spans` -- a zero-dependency structured span
  tracer (context-manager API, nested spans, monotonic clocks, span
  attributes) writing append-only JSONL trace files.  Installed like the
  fault plane's injector: a module global that every instrumented call
  checks with one ``None`` test, so tracing off costs nothing
  measurable (certified by ``benchmarks/bench_runtime_overhead.py``).
* :mod:`repro.telemetry.metrics` -- a process-wide registry of
  counters, gauges and fixed-bucket histograms with a JSON dump and a
  Prometheus-style text exposition writer.  Always on (increments are
  plain attribute updates); the suite snapshots it per circuit and
  stores the delta in ``report["perf"]["metrics"]``, which
  ``mask_volatile`` masks wholesale.
* :mod:`repro.telemetry.traceview` -- the reader behind the
  ``repro-ser trace`` CLI subcommand (``summarize`` / ``top`` /
  ``flame``).

Layering: this package imports nothing from the rest of :mod:`repro`
except :mod:`repro.errors`, so every layer -- the core solver, the sim,
the cache, the fault plane -- may emit telemetry without cycles.

See ``docs/observability.md`` for the span model, the metric-name table
and the trace-file schema.
"""

from .metrics import (REGISTRY, Counter, Gauge, Histogram,
                      MetricsRegistry, histogram_quantile)
from .spans import (TRACE_FORMAT, TRACE_VERSION, Tracer, active,
                    add_attrs, current_span_id, event, install, installed,
                    merge_shard_traces, new_trace_id, shard_trace_path,
                    shard_trace_paths, span, uninstall)

__all__ = [
    "REGISTRY", "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "TRACE_FORMAT", "TRACE_VERSION", "Tracer", "active", "add_attrs",
    "current_span_id", "event", "histogram_quantile", "install",
    "installed", "merge_shard_traces", "new_trace_id",
    "shard_trace_path", "shard_trace_paths", "span", "uninstall",
]

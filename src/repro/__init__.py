"""repro: Retiming for Soft Error Minimization Under ELW Constraints.

A from-scratch Python reproduction of Lu & Zhou, DATE 2013: the MinObsWin
retiming algorithm (register-observability minimization under
error-latching-window constraints) together with every substrate it needs
-- netlists, logic simulation, observability analysis, ELW timing, the SER
engine, classic retiming, and the MinObs baseline.

Quickstart::

    from repro import loads_bench, optimize_circuit

    circuit = loads_bench(open("design.bench").read())
    result = optimize_circuit(circuit)
    for name, outcome in result.outcomes.items():
        print(name, outcome.ser.total, "vs", result.ser_original.total)

See README.md for the architecture overview and DESIGN.md for the mapping
between the paper and the modules.
"""

from .errors import (
    AnalysisError,
    CombinationalCycleError,
    InfeasibleError,
    LibraryError,
    NetlistError,
    ParseError,
    ReproError,
    RetimingError,
    SimulationError,
    TimingError,
)
from .netlist import (
    DFF,
    CellLibrary,
    CellType,
    Circuit,
    Gate,
    dump_bench,
    dump_blif,
    dump_verilog,
    dumps_bench,
    dumps_blif,
    dumps_verilog,
    generic_library,
    load_bench,
    load_blif,
    loads_bench,
    loads_blif,
    validate_circuit,
)
from .graph import RetimingGraph
from .core.intervals import IntervalSet
from .core.elw import circuit_elws, graph_elws
from .core.constraints import Problem, gains, register_observability
from .core.initialization import initialize
from .core.minobs import minobs_retiming
from .core.minobswin import RetimingResult, minobswin_retiming
from .retime.apply import apply_retiming
from .retime.minperiod import min_period_retiming
from .retime.setup_hold import min_period_setup_hold
from .retime.verify import check_sequential_equivalence
from .ser.analysis import SerAnalysis, analyze_ser
from .sim.odc import exact_observability, observability
from .pipeline import (
    AlgorithmOutcome,
    PipelineResult,
    optimize_circuit,
    rebuild_retimed,
    table1_row,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError", "NetlistError", "ParseError", "CombinationalCycleError",
    "LibraryError", "RetimingError", "InfeasibleError", "TimingError",
    "SimulationError", "AnalysisError",
    # netlist
    "Circuit", "Gate", "DFF", "CellLibrary", "CellType", "generic_library",
    "loads_bench", "load_bench", "dumps_bench", "dump_bench",
    "loads_blif", "load_blif", "dumps_blif", "dump_blif",
    "dumps_verilog", "dump_verilog", "validate_circuit",
    # graph / core
    "RetimingGraph", "IntervalSet", "circuit_elws", "graph_elws",
    "Problem", "gains", "register_observability", "initialize",
    "minobs_retiming", "minobswin_retiming", "RetimingResult",
    # retime
    "apply_retiming", "min_period_retiming", "min_period_setup_hold",
    "check_sequential_equivalence",
    # ser / sim
    "SerAnalysis", "analyze_ser", "observability", "exact_observability",
    # pipeline
    "optimize_circuit", "rebuild_retimed", "table1_row",
    "PipelineResult", "AlgorithmOutcome",
]

"""Internal helper: parse embedded .bench text without import cycles."""

from __future__ import annotations

from ..netlist.bench_format import loads_bench
from ..netlist.cell_library import CellLibrary
from ..netlist.circuit import Circuit


def _loads(text: str, name: str,
           library: CellLibrary | None = None) -> Circuit:
    return loads_bench(text, name=name, library=library)

"""Hand-built small circuits used by examples, tests and Figure 1.

:`figure1_circuit` reconstructs the scenario of the paper's Fig. 1: a
register pair on the fanins of a convergence gate F whose combined
observability exceeds F's own, so observability-only retiming (MinObs)
happily merges the registers forward through F -- shrinking register
observability -- while the move stretches the error-latching windows of
the upstream gates A and B by F's delay and makes the *total* SER worse.
The example and benchmark scripts verify both halves numerically.
"""

from __future__ import annotations

from ..netlist.cell_library import CellLibrary
from ..netlist.circuit import Circuit


def figure1_circuit(depth: int = 4,
                    library: CellLibrary | None = None) -> Circuit:
    """The Fig. 1 ELW trade-off circuit.

    Structure per side (registers marked ``|``; the B side mirrors A)::

        x0 -> u0 -> u1 -> ... -> A --+--> hA --> out
                                     |
                              x1 ----+    (A = OR(u_last, x1))
                                     |
                                 A --|--+
                                        F --> G --> out
                                 B --|--+

    Why this reproduces the figure:

    * *observability side*: obs(A) + obs(B) (two registers) exceeds
      obs(F) (one register after merging forward through the AND), so
      observability-only retiming (MinObs) makes the move -- the paper's
      "0.6 -> 0.4" reduction;
    * *timing side*: each of A and B has a second, shorter observation
      path (``hA``, a NOT straight to an output).  Before the move their
      ELW is the union of the latching window (via the register) and the
      window shifted by d(NOT) -- overlapping.  After the move the
      register path's window is shifted by d(F) instead, the pieces
      disjoin, and |ELW| grows by exactly 1 time unit for A, B and every
      chain gate ``u_i`` upstream -- the figure's "+1";
    * with ``depth`` chain gates per side the accumulated ELW penalty
      outweighs the register-observability gain and the total SER gets
      *worse*, while the shortened register-to-register path (d(G) <
      R_min) is exactly what P2' forbids: MinObsWin keeps the registers.
    """
    c = Circuit("fig1", library)
    for i in range(4):
        c.add_input(f"x{i}")
    for side, (x_chain, x_other) in (("A", ("x0", "x1")),
                                     ("B", ("x2", "x3"))):
        prev = x_chain
        for k in range(depth):
            prev = c.add_gate(f"u{side}{k}", "NOT", [prev])
        c.add_gate(side, "OR", [prev, x_other])
        c.add_gate(f"h{side}", "NOT", [side])
        c.add_output(f"h{side}")
        c.add_dff(f"r{side}", side, init=0)
    c.add_gate("F", "AND", ["rA", "rB"])
    c.add_gate("G", "BUF", ["F"])
    c.add_output("G")
    return c


def simple_feedback_circuit(library: CellLibrary | None = None) -> Circuit:
    """A 2-state controller: minimal circuit with a sequential loop.

    Used by unit tests that need feedback without the bulk of a
    generator circuit.
    """
    c = Circuit("feedback", library)
    c.add_input("a")
    c.add_input("b")
    c.add_gate("next0", "XOR", ["a", "state"])
    c.add_gate("next1", "NAND", ["next0", "b"])
    c.add_dff("state", "next1", init=0)
    c.add_gate("out", "AND", ["state", "a"])
    c.add_output("out")
    return c


def toy_correlator(library: CellLibrary | None = None) -> Circuit:
    """The Leiserson-Saxe correlator (the canonical retiming example).

    Compares a 3-deep delayed input stream against itself and sums the
    matches with XNOR comparators and an OR-combine -- the textbook
    circuit whose min-period retiming moves registers across the
    combine tree.
    """
    c = Circuit("correlator", library)
    x = c.add_input("x")
    d1 = c.add_dff("d1", "x")
    d2 = c.add_dff("d2", "d1")
    d3 = c.add_dff("d3", "d2")
    c1 = c.add_gate("cmp1", "XNOR", [x, d1])
    c2 = c.add_gate("cmp2", "XNOR", [d1, d2])
    c3 = c.add_gate("cmp3", "XNOR", [d2, d3])
    s1 = c.add_gate("sum1", "OR", [c1, c2])
    s2 = c.add_gate("sum2", "OR", [s1, c3])
    c.add_output(s2)
    return c


#: The real ISCAS89 s27 benchmark (the only suite member small enough to
#: ship verbatim; the larger members are synthesized, see suites.py).
S27_BENCH = """
# s27 (ISCAS89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
"""


def iscas_s27(library: CellLibrary | None = None) -> Circuit:
    """The genuine ISCAS89 s27 netlist (10 gates, 3 flip-flops).

    Small enough to distribute and to brute-force, so it anchors the
    synthetic suite to at least one real benchmark circuit.
    """
    from .bench_loader import _loads

    return _loads(S27_BENCH, "s27", library)

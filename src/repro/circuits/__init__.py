"""Benchmark circuits: synthetic generators and hand-built examples.

The paper evaluates on ISCAS89/ITC99 netlists "obtained from the authors
of [20]", which are not redistributable.  This package provides:

* :mod:`repro.circuits.generators` -- deterministic synthetic sequential
  circuits with controllable size, logic depth, register density and
  feedback (the structural knobs that drive the paper's results);
* :mod:`repro.circuits.small` -- hand-built circuits: the Fig. 1 ELW
  trade-off example, classic textbook machines (correlator, counters,
  LFSRs, pipelines) used by tests and examples;
* :mod:`repro.circuits.suites` -- the 21-row Table I suite: one synthetic
  circuit per paper row, matching the row's |V| / |E| / #FF ratios at a
  configurable scale.
"""

from .generators import (
    fsm_datapath_circuit,
    lfsr_circuit,
    mesh_circuit,
    pipeline_circuit,
    random_sequential_circuit,
    resolve_rng,
    ripple_counter_circuit,
    tree_circuit,
)
from .small import (
    figure1_circuit,
    iscas_s27,
    simple_feedback_circuit,
    toy_correlator,
)
from .suites import TABLE1_ROWS, table1_circuit, table1_suite

__all__ = [
    "random_sequential_circuit",
    "pipeline_circuit",
    "lfsr_circuit",
    "ripple_counter_circuit",
    "fsm_datapath_circuit",
    "tree_circuit",
    "mesh_circuit",
    "resolve_rng",
    "figure1_circuit",
    "iscas_s27",
    "simple_feedback_circuit",
    "toy_correlator",
    "TABLE1_ROWS",
    "table1_circuit",
    "table1_suite",
]

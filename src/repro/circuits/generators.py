"""Deterministic synthetic sequential-circuit generators.

All generators are seeded and structural: they produce well-formed
synchronous netlists (every feedback loop broken by a register, no
register-only cycles) whose size knobs -- gate count, connection count,
register density, logic depth -- can be tuned to mirror the ISCAS89/ITC99
rows of Table I (see :mod:`repro.circuits.suites`).

Design notes (what matters for reproducing the paper's behaviour):

* *register placement*: a configurable fraction of gate outputs feed
  registers, creating the register-to-register paths whose lengths the
  ELW constraints police;
* *feedback*: registers close loops back into earlier logic (like FSM
  state), so time-frame expansion is actually exercised;
* *reconvergence*: random multi-fanout taps create the reconvergent paths
  that separate the fast backward ODC propagation from the exact oracle;
* *op mix*: weighted toward NAND/NOR/AND/OR with some XOR, so signal
  probabilities stay away from degenerate 0/1 fixpoints.

Seeding contract (the dgen-rs rule): every stochastic generator accepts
either a bare integer ``seed`` *or* an explicit ``rng``
(:class:`numpy.random.Generator`) instance.  Passing an instance lets a
composite generator (an FSM + datapath mix, a c-slowed core, a corpus
tier) thread **one** private stream through its sub-generators, so
nothing ever touches shared or global RNG state and the emitted netlist
is a pure function of ``(family, params, seed)`` -- byte-reproducible
across processes and platforms (see :mod:`repro.corpus`).
"""

from __future__ import annotations

import bisect

import numpy as np

from ..errors import NetlistError
from ..netlist.circuit import Circuit
from ..netlist.cell_library import CellLibrary


def resolve_rng(seed: int = 0,
                rng: np.random.Generator | None = None,
                ) -> np.random.Generator:
    """Return the RNG a generator should draw from.

    An explicit ``rng`` instance wins over ``seed``; a fresh PCG64
    stream is derived from ``seed`` otherwise.  Rejects anything that is
    not a :class:`numpy.random.Generator` (notably the legacy
    ``numpy.random.RandomState`` and ``random.Random``): their streams
    differ, and a silently accepted wrong type would break the corpus's
    byte-reproducibility contract.
    """
    if rng is None:
        return np.random.default_rng(seed)
    if not isinstance(rng, np.random.Generator):
        raise NetlistError(
            f"rng must be a numpy.random.Generator instance, "
            f"got {type(rng).__name__}")
    return rng


_OPS_BY_ARITY: dict[int, list[str]] = {
    1: ["NOT", "BUF"],
    2: ["NAND", "NOR", "AND", "OR", "XOR"],
    3: ["NAND", "NOR", "AND", "OR"],
    4: ["NAND", "NOR", "AND", "OR"],
}
_OP_WEIGHTS: dict[int, list[float]] = {
    1: [0.7, 0.3],
    2: [0.28, 0.2, 0.2, 0.2, 0.12],
    3: [0.3, 0.2, 0.3, 0.2],
    4: [0.3, 0.2, 0.3, 0.2],
}


def random_sequential_circuit(name: str, n_gates: int, n_dffs: int,
                              n_inputs: int = 8, n_outputs: int = 8,
                              avg_fanin: float = 2.2,
                              locality: int = 64,
                              feedback_fraction: float = 0.5,
                              seed: int = 0,
                              library: CellLibrary | None = None,
                              rng: np.random.Generator | None = None,
                              ) -> Circuit:
    """Generate a random synchronous circuit.

    Parameters
    ----------
    n_gates, n_dffs, n_inputs, n_outputs:
        Structural sizes; ``n_gates`` must be at least 2 and at least as
        large as ``n_outputs``.
    avg_fanin:
        Mean gate fanin; together with ``n_gates`` this sets the
        connection count (the paper's |E|).
    locality:
        Gates prefer sources among the previous ``locality`` nets,
        producing the layered, locally-connected structure of mapped
        netlists (and bounded logic depth).
    feedback_fraction:
        Fraction of register outputs wired back into the *early* part of
        the gate list on the next cycle (state feedback); the rest feed
        forward like pipeline registers.
    seed:
        RNG seed; identical arguments always produce identical netlists.
    rng:
        Explicit :class:`numpy.random.Generator` to draw from instead of
        ``seed`` (see :func:`resolve_rng`); composite generators pass
        their own stream here so nested calls never share state.
    """
    if n_gates < 2:
        raise NetlistError("need at least 2 gates")
    if n_inputs < 1:
        raise NetlistError("need at least 1 primary input")
    rng = resolve_rng(seed, rng)
    circuit = Circuit(name, library)

    inputs = [circuit.add_input(f"pi{i}") for i in range(n_inputs)]
    gate_names = [f"g{i}" for i in range(n_gates)]
    dff_names = [f"ff{i}" for i in range(n_dffs)]

    # Registers sample their data inputs from the gate list (distinct
    # driver gates where possible -- one physical register per driver, the
    # Leiserson-Saxe per-edge register model stays aligned with physical
    # register counts when register fanout is low); a feedback register is
    # readable by every gate, a pipeline register only by gates later than
    # its driver.  Register sources are never the register-reading
    # state-decode gates (defined below): a reg -> gate -> reg hop on a
    # feedback cycle would make the cycle hold-infeasible for any
    # retiming whenever T_h exceeds one gate delay.
    decode_stride = max(2, round(n_gates / max(1, int(n_dffs * 0.8))))
    source_pool = np.array([gi for gi in range(n_gates)
                            if gi % decode_stride != 0])
    if n_dffs <= len(source_pool):
        dff_sources = rng.choice(source_pool, size=n_dffs, replace=False)
    else:
        dff_sources = source_pool[
            rng.integers(0, len(source_pool), size=n_dffs)]
    is_feedback = rng.random(n_dffs) < feedback_fraction

    # Pools of nets gates may read: earlier gates (locality-windowed),
    # primary inputs (restricted to an input zone near the front, as in
    # real netlists -- this also preserves retiming freedom: a gate fed
    # directly by a primary input can never send a register forward), and
    # register outputs (sampled with low probability so register fanout
    # stays realistic).
    pi_zone = max(4, n_gates // 8)
    dff_read_prob = min(0.9, 1.6 * n_dffs / max(1, n_gates * avg_fanin))
    dff_source_set = {gate_names[int(s)] for s in dff_sources}
    # State-decode zone: a slice of gates (interleaved through the list
    # at decode_stride, like the next-state / output-decode logic of real
    # designs) that read *pairs* of register outputs.  Registers whose
    # fanouts converge at a shared gate are exactly what gives retiming
    # its register-merge moves -- without this, random wiring leaves
    # almost no freedom.
    unread: list[str] = []  # nets with no reader yet (keeps logic alive)
    # Register-read eligibility, incrementally: register ``di`` becomes
    # readable at gate 0 (feedback) or one past its driver (pipeline).
    # A flat arrival index plus a sorted eligible pool replaces the old
    # per-gate rescan of every register -- O(gates + dffs log dffs)
    # instead of O(gates * dffs) -- while reproducing the exact ordered
    # pool (ascending register index) the rescan built, so the RNG
    # draw sequence, and therefore every emitted netlist, is
    # byte-identical to the quadratic version.
    arrival = np.where(is_feedback, 0, dff_sources + 1)
    arrivals_by_gate: dict[int, list[int]] = {}
    for di in np.argsort(arrival, kind="stable").tolist():
        arrivals_by_gate.setdefault(int(arrival[di]), []).append(di)
    eligible: list[int] = []  # readable register indices, ascending
    for gi, gname in enumerate(gate_names):
        for di in arrivals_by_gate.pop(gi, ()):
            bisect.insort(eligible, di)
        n_in = int(np.clip(round(rng.normal(avg_fanin, 0.9)), 1, 4))
        window_start = max(0, gi - locality)
        pool: list[str] = list(gate_names[window_start:gi])
        if gi < pi_zone or not pool:
            pool.extend(inputs)

        chosen_nets: list[str] = []
        taken: set[str] = set()
        if gi % decode_stride == 0 and len(eligible) >= 2:
            # State-decode gate: merge two register outputs.  The
            # registers are consumed (fanout 1) so the Leiserson-Saxe
            # per-edge register model of the paper's objective (eq. 5)
            # coincides with the physical register count.
            picks = sorted(rng.choice(len(eligible), size=2,
                                      replace=False), reverse=True)
            for p in picks:
                name = dff_names[eligible.pop(int(p))]
                chosen_nets.append(name)
                taken.add(name)
            # Exactly the two registers: any extra (unregistered) input
            # would block the merge move with a P0 cascade.
            n_in = 2
        else:
            # First input: revive an unread net so no logic goes dead.
            while unread and len(unread) > max(4, n_inputs):
                candidate = unread.pop(0)
                chosen_nets.append(candidate)
                taken.add(candidate)
                break
        while len(chosen_nets) < n_in:
            if eligible and rng.random() < dff_read_prob:
                pick = dff_names[eligible.pop(
                    int(rng.integers(0, len(eligible))))]
            else:
                pick = pool[int(rng.integers(0, len(pool)))]
            if pick in taken:
                # Tolerate occasional short gates instead of looping.
                if rng.random() < 0.5:
                    break
                continue
            taken.add(pick)
            chosen_nets.append(pick)
        n_in = len(chosen_nets)
        ops = _OPS_BY_ARITY[n_in]
        op = ops[rng.choice(len(ops), p=_OP_WEIGHTS[n_in])]
        circuit.add_gate(gname, op, chosen_nets)
        for net in chosen_nets:
            if net in unread:
                unread.remove(net)
        if gname not in dff_source_set:
            unread.append(gname)
        elif rng.random() < 0.6:
            # Side observation tap on a register's source gate (the
            # Fig. 1 structure): the gate is observable both through its
            # register and through a combinational side path, so moving
            # the register away genuinely unions differently-shifted
            # latching windows -- the ELW-growth mechanism the paper's
            # P2' constraint exists to police.
            unread.append(gname)

    for di, dname in enumerate(dff_names):
        circuit.add_dff(dname, gate_names[int(dff_sources[di])], init=0)

    # Output stage: like real netlists, no logic is dead -- leftover
    # unread nets (gate outputs *and* unread registers) feed pairwise
    # output-compaction trees whose roots are the primary outputs.  The
    # trees deepen the logic in front of the outputs, so the initial
    # circuit has no one-gate register-to-latch paths (which would
    # degenerate the R_min of Sec. V) and no register is trapped
    # guarding a primary output (which would make hold repair
    # impossible: such a register can never move forward).
    read_dffs = {net for g in circuit.gates.values() for net in g.inputs}
    sinks = list(dict.fromkeys(unread))
    sinks.extend(d for d in dff_names if d not in read_dffs)
    rng.shuffle(sinks)
    tree_index = 0
    target = max(2, n_outputs)
    tree_ops = ["OR", "XOR", "NAND", "AND", "NOR"]
    while len(sinks) > target:
        a = sinks.pop(0)
        b = sinks.pop(0)
        op = tree_ops[tree_index % len(tree_ops)]
        name = circuit.add_gate(f"po_t{tree_index}", op, [a, b])
        tree_index += 1
        sinks.append(name)
    for net in sinks:
        circuit.add_output(net)

    from ..netlist.validate import validate_circuit

    validate_circuit(circuit)
    return circuit


def pipeline_circuit(name: str = "pipeline", stages: int = 4,
                     width: int = 8, seed: int = 0,
                     library: CellLibrary | None = None,
                     rng: np.random.Generator | None = None) -> Circuit:
    """A feed-forward pipelined datapath (register bank between stages).

    Each stage is a shuffle of 2-input gates over the previous stage's
    registered outputs -- the classic structure where retiming has full
    freedom to rebalance registers.  Every register is consumed by
    exactly one gate (a lane permutation plus short intra-stage chains),
    keeping the Leiserson-Saxe per-edge register model aligned with the
    physical register count.
    """
    rng = resolve_rng(seed, rng)
    circuit = Circuit(name, library)
    current = [circuit.add_input(f"in{i}") for i in range(width)]
    for stage in range(stages):
        perm = rng.permutation(width)
        stage_nets: list[str] = []
        for lane in range(width):
            a = current[int(perm[lane])]
            # Second operand: the previous gate in this stage (a short
            # intra-stage chain), so each incoming lane is read once.
            b = stage_nets[-1] if lane % 4 and stage_nets else \
                current[int(perm[lane])]
            ops = _OPS_BY_ARITY[2]
            op = ops[rng.choice(len(ops), p=_OP_WEIGHTS[2])]
            if a == b and op == "XOR":
                op = "NAND"
            stage_nets.append(
                circuit.add_gate(f"s{stage}_g{lane}", op, [a, b]))
        current = [circuit.add_dff(f"s{stage}_r{lane}", net)
                   for lane, net in enumerate(stage_nets)]
    for lane, net in enumerate(current):
        circuit.add_output(net)
    return circuit


def lfsr_circuit(name: str = "lfsr", taps: tuple[int, ...] = (0, 2, 3),
                 length: int = 8,
                 library: CellLibrary | None = None) -> Circuit:
    """A Fibonacci LFSR with an enable input (dense feedback).

    The register chain shifts every cycle; the feedback bit is the XOR of
    the tapped stages gated by ``en``.  Small, strongly-connected, and a
    stress test for time-frame expansion.
    """
    if any(t >= length for t in taps) or len(taps) < 2:
        raise NetlistError("taps must be below length and at least two")
    circuit = Circuit(name, library)
    en = circuit.add_input("en")
    stage_names = [f"r{i}" for i in range(length)]
    # Feedback XOR tree over the taps.
    prev = stage_names[taps[0]]
    for k, tap in enumerate(taps[1:]):
        prev = circuit.add_gate(f"fb{k}", "XOR", [prev, stage_names[tap]])
    gated = circuit.add_gate("fb_en", "AND", [prev, en])
    # A seed path so the all-zero state is escapable: OR with NOT(en).
    nen = circuit.add_gate("nen", "NOT", [en])
    injected = circuit.add_gate("fb_inject", "OR", [gated, nen])
    circuit.add_dff(stage_names[0], injected, init=1)
    for i in range(1, length):
        buf = circuit.add_gate(f"sh{i}", "BUF", [stage_names[i - 1]])
        circuit.add_dff(stage_names[i], buf, init=0)
    circuit.add_output(stage_names[length - 1])
    circuit.add_output("fb_inject")
    return circuit


def ripple_counter_circuit(name: str = "counter", bits: int = 4,
                           library: CellLibrary | None = None) -> Circuit:
    """A synchronous binary up-counter with enable.

    ``bit[i]`` toggles when all lower bits are 1 and ``en`` is high:
    carry chain of AND gates plus XOR toggles -- long combinational
    paths ending in registers, good for setup-constraint tests.
    """
    if bits < 1:
        raise NetlistError("need at least one bit")
    circuit = Circuit(name, library)
    en = circuit.add_input("en")
    regs = [f"q{i}" for i in range(bits)]
    carry = en
    for i in range(bits):
        toggle = circuit.add_gate(f"t{i}", "XOR", [regs[i], carry])
        circuit.add_dff(regs[i], toggle, init=0)
        if i + 1 < bits:
            carry = circuit.add_gate(f"c{i}", "AND", [carry, regs[i]])
    for q in regs:
        circuit.add_output(q)
    return circuit


def fsm_datapath_circuit(name: str = "fsm_dp", state_bits: int = 4,
                         stages: int = 3, width: int = 8, seed: int = 0,
                         library: CellLibrary | None = None,
                         rng: np.random.Generator | None = None) -> Circuit:
    """An FSM controlling a pipelined datapath (control + data mix).

    The controller is a ``state_bits``-wide register bank with decode
    gates that merge *pairs* of state registers (the structure that gives
    retiming its register-merge moves) and next-state XOR feedback; each
    datapath stage is gated by one decode output, so control and data
    logic genuinely interleave -- the mixed-topology case absent from the
    paper's Table I rows.

    Gate count grows as ``O(state_bits + stages * width)``; both halves
    draw from one ``rng`` stream, so the netlist is a pure function of
    ``(params, seed)``.
    """
    if state_bits < 2:
        raise NetlistError("need at least 2 state bits")
    if stages < 1 or width < 2:
        raise NetlistError("need at least 1 stage and width >= 2")
    rng = resolve_rng(seed, rng)
    circuit = Circuit(name, library)
    ctl = circuit.add_input("ctl")
    data = [circuit.add_input(f"in{i}") for i in range(width)]

    # Controller: decode gates merge adjacent state-register pairs, the
    # next-state bit XORs the decode with the control input (a register
    # -> decode -> XOR -> register loop, broken by the register).
    state = [f"st{i}" for i in range(state_bits)]
    decodes: list[str] = []
    for i in range(state_bits):
        a, b = state[i], state[(i + 1) % state_bits]
        ops = _OPS_BY_ARITY[2]
        op = ops[rng.choice(len(ops), p=_OP_WEIGHTS[2])]
        if op == "XOR" and a == b:
            op = "NAND"
        decodes.append(circuit.add_gate(f"dec{i}", op, [a, b]))
        nxt = circuit.add_gate(f"nxt{i}", "XOR", [decodes[i], ctl])
        circuit.add_dff(state[i], nxt, init=i % 2)

    # Datapath: each stage permutes its lanes through 2-input gates; one
    # lane per stage is gated by a controller decode output so the FSM's
    # observability couples into the datapath's.
    current = data
    for stage in range(stages):
        perm = rng.permutation(width)
        gate_lane = int(rng.integers(0, width))
        stage_nets: list[str] = []
        for lane in range(width):
            a = current[int(perm[lane])]
            if lane == gate_lane:
                b = decodes[stage % state_bits]
            elif lane % 3 and stage_nets:
                b = stage_nets[-1]
            else:
                b = current[int(perm[(lane + 1) % width])]
            ops = _OPS_BY_ARITY[2]
            op = ops[rng.choice(len(ops), p=_OP_WEIGHTS[2])]
            if a == b and op == "XOR":
                op = "NAND"
            stage_nets.append(
                circuit.add_gate(f"p{stage}_g{lane}", op, [a, b]))
        current = [circuit.add_dff(f"p{stage}_r{lane}", net)
                   for lane, net in enumerate(stage_nets)]
    for net in current:
        circuit.add_output(net)
    # Observe the controller through a side path as well, so moving its
    # registers unions differently-shifted latching windows (the Fig. 1
    # ELW-growth structure).
    obs = circuit.add_gate("st_obs", "OR", [state[0], state[-1]])
    circuit.add_output(obs)

    from ..netlist.validate import validate_circuit

    validate_circuit(circuit)
    return circuit


def tree_circuit(name: str = "tree", leaves: int = 16, reg_every: int = 2,
                 seed: int = 0, library: CellLibrary | None = None,
                 rng: np.random.Generator | None = None) -> Circuit:
    """A registered reduction tree with root-to-leaf feedback.

    ``leaves`` primary inputs reduce pairwise through 2-input gates; a
    register bank cuts the tree every ``reg_every`` levels (pipelined
    interconnect), and the registered root feeds back into the first
    leaf pair so the loop exercises time-frame expansion.  Gate count is
    ``leaves - 1`` plus the feedback mixer -- O(n) at any scale.
    """
    if leaves < 2:
        raise NetlistError("need at least 2 leaves")
    if reg_every < 1:
        raise NetlistError("reg_every must be >= 1")
    rng = resolve_rng(seed, rng)
    circuit = Circuit(name, library)
    root_reg = "root_r"
    first = circuit.add_input("leaf0")
    mixer = circuit.add_gate("fb_mix", "XOR", [first, root_reg])
    level = [mixer] + [circuit.add_input(f"leaf{i}")
                       for i in range(1, leaves)]
    depth = 0
    while len(level) > 1:
        depth += 1
        nxt: list[str] = []
        for k in range(0, len(level) - 1, 2):
            ops = _OPS_BY_ARITY[2]
            op = ops[rng.choice(len(ops), p=_OP_WEIGHTS[2])]
            nxt.append(circuit.add_gate(
                f"t{depth}_{k // 2}", op, [level[k], level[k + 1]]))
        if len(level) % 2:
            nxt.append(level[-1])
        if depth % reg_every == 0 and len(nxt) > 1:
            nxt = [circuit.add_dff(f"t{depth}_r{j}", net)
                   if net in circuit.gates else net
                   for j, net in enumerate(nxt)]
        level = nxt
    circuit.add_dff(root_reg, level[0], init=0)
    circuit.add_output(root_reg)
    circuit.add_output(level[0])

    from ..netlist.validate import validate_circuit

    validate_circuit(circuit)
    return circuit


def mesh_circuit(name: str = "mesh", rows: int = 4, cols: int = 4,
                 seed: int = 0, library: CellLibrary | None = None,
                 rng: np.random.Generator | None = None) -> Circuit:
    """A systolic 2-D mesh with a registered torus wrap.

    Each cell combines its west and north neighbours through a 2-input
    gate and registers the result (nearest-neighbour interconnect, the
    topology of systolic arrays and NoC fabrics).  The east edge wraps
    back to the west edge through the cell registers, closing ``rows``
    feedback rings; the north edge is fed by primary inputs and the
    south edge drives the primary outputs.  ``rows * cols`` gates and
    registers -- O(n) at any scale.
    """
    if rows < 1 or cols < 2:
        raise NetlistError("need at least 1 row and 2 columns")
    rng = resolve_rng(seed, rng)
    circuit = Circuit(name, library)
    north = [circuit.add_input(f"n{c}") for c in range(cols)]

    def reg(r: int, c: int) -> str:
        return f"m{r}_{c}_r"

    for r in range(rows):
        for c in range(cols):
            west = reg(r, (c - 1) % cols)  # torus wrap on column 0
            ops = _OPS_BY_ARITY[2]
            op = ops[rng.choice(len(ops), p=_OP_WEIGHTS[2])]
            if op == "XOR" and west == north[c]:
                op = "NAND"
            g = circuit.add_gate(f"m{r}_{c}_g", op, [west, north[c]])
            circuit.add_dff(reg(r, c), g, init=(r + c) % 2)
        north = [reg(r, c) for c in range(cols)]
    for c in range(cols):
        circuit.add_output(reg(rows - 1, c))

    from ..netlist.validate import validate_circuit

    validate_circuit(circuit)
    return circuit

"""The Table I benchmark suite.

One synthetic circuit per row of the paper's Table I, preserving each
row's name and its |V| / |E| / #FF proportions at a configurable scale
(the originals range up to 224k gates -- the authors' C++ on a 2 GHz Xeon;
this is a pure-Python reproduction, so the default scale keeps the
largest rows around a few thousand gates; see DESIGN.md substitutions).

The row statistics below are copied verbatim from Table I.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from ..netlist.cell_library import CellLibrary
from ..netlist.circuit import Circuit
from .generators import random_sequential_circuit


@dataclass(frozen=True)
class Table1Row:
    """Statistics of one Table I circuit (paper values)."""

    name: str
    vertices: int
    edges: int
    registers: int
    phi_paper: int
    ser_paper: float


#: The 21 circuits of Table I with their published statistics.
TABLE1_ROWS: tuple[Table1Row, ...] = (
    Table1Row("s13207", 7952, 10896, 1508, 117, 7.72e-03),
    Table1Row("s15850.1", 9773, 13566, 1567, 111, 9.77e-03),
    Table1Row("s35932", 16066, 28588, 5814, 145, 2.42e-02),
    Table1Row("s38417", 22180, 31127, 2806, 81, 1.59e-02),
    Table1Row("s38584.1", 19254, 33060, 7371, 262, 2.48e-02),
    Table1Row("b14_1_opt", 4049, 9036, 2382, 112, 9.15e-03),
    Table1Row("b14_opt", 5348, 11849, 2041, 135, 9.75e-03),
    Table1Row("b15_1_opt", 7421, 16946, 2798, 158, 1.25e-02),
    Table1Row("b15_opt", 7023, 15856, 2415, 195, 1.35e-02),
    Table1Row("b17_1_opt", 23026, 52376, 8791, 192, 3.92e-02),
    Table1Row("b17_opt", 22758, 51622, 7787, 266, 3.42e-02),
    Table1Row("b18_1_opt", 68282, 151746, 21027, 251, 9.42e-02),
    Table1Row("b18_opt", 69914, 155355, 20907, 255, 9.56e-02),
    Table1Row("b19_1", 212729, 410577, 59580, 317, 2.45e-01),
    Table1Row("b19", 224625, 433583, 60801, 317, 2.50e-01),
    Table1Row("b20_1_opt", 10166, 22456, 3462, 191, 1.63e-02),
    Table1Row("b20_opt", 11958, 26479, 4761, 182, 2.15e-02),
    Table1Row("b21_1_opt", 9663, 21246, 2451, 171, 1.22e-02),
    Table1Row("b21_opt", 12135, 26686, 4186, 215, 1.90e-02),
    Table1Row("b22_1_opt", 14957, 32663, 4398, 194, 2.19e-02),
    Table1Row("b22_opt", 17330, 37941, 5556, 178, 2.67e-02),
)

_ROWS_BY_NAME = {row.name: row for row in TABLE1_ROWS}

_TABLE1_LIBRARY: CellLibrary | None = None


def table1_library() -> CellLibrary:
    """The cell library used by the Table I suite.

    The generic characterization with ``T_h = 3.0``: our library's mean
    gate delay is about 2.8 units, so a 3-unit hold window spans roughly
    one gate -- the same T_h-to-delay ratio as the paper's setup (T_h = 2
    against approximately 2-unit gates, per [23]).  A hold window shorter
    than every gate would make P2' vacuous (any single-gate path already
    satisfies it), erasing the MinObs/MinObsWin distinction the paper
    studies.
    """
    global _TABLE1_LIBRARY
    if _TABLE1_LIBRARY is None:
        from ..netlist.cell_library import generic_library

        lib = generic_library()
        lib.hold_time = 3.0
        lib.name = "table1"
        _TABLE1_LIBRARY = lib
    return _TABLE1_LIBRARY

#: Default scale: the largest row (b19, 224k gates) maps to ~4.5k gates.
DEFAULT_SCALE = 0.02
#: Smallest circuit the generator will produce for a row.
MIN_GATES = 120


def table1_circuit(name: str, scale: float = DEFAULT_SCALE, seed: int = 0,
                   library: CellLibrary | None = None) -> Circuit:
    """Generate the synthetic stand-in for a Table I row.

    ``scale`` multiplies the row's gate and register counts (connection
    count follows via the row's average fanin); rows are floored at
    ``MIN_GATES`` gates so small scales stay meaningful.  The seed is
    derived from the row name, so every call is reproducible and each
    row gets a distinct circuit.

    The suite uses :func:`table1_library` by default: the generic delay
    model with the hold time calibrated to about one average gate delay,
    preserving the paper's [23]-derived relationship (their T_s = 0 and
    T_h = 2 sit next to roughly 2-unit gate delays) -- the regime where
    P2' actually polices the MinObs moves.
    """
    if library is None:
        library = table1_library()
    row = _ROWS_BY_NAME[name]
    n_gates = max(MIN_GATES, round(row.vertices * scale))
    ratio = row.registers / row.vertices
    n_dffs = max(8, round(n_gates * ratio))
    avg_fanin = row.edges / row.vertices
    # ISCAS "s" circuits are shallow scan designs; ITC "b" circuits are
    # deeper control-dominated logic -- reflected in wiring locality.
    locality = 32 if name.startswith("s") else 96
    row_seed = (zlib.crc32(name.encode()) ^ seed) & 0x7FFFFFFF
    n_inputs = max(4, n_gates // 40)
    n_outputs = max(4, n_gates // 50)
    return random_sequential_circuit(
        name=name, n_gates=n_gates, n_dffs=n_dffs, n_inputs=n_inputs,
        n_outputs=n_outputs, avg_fanin=avg_fanin, locality=locality,
        feedback_fraction=0.45, seed=row_seed, library=library)


def table1_suite(scale: float = DEFAULT_SCALE, seed: int = 0,
                 names: tuple[str, ...] | None = None,
                 library: CellLibrary | None = None,
                 ) -> dict[str, Circuit]:
    """Generate the whole (or a named subset of the) Table I suite."""
    rows = TABLE1_ROWS if names is None else \
        tuple(_ROWS_BY_NAME[n] for n in names)
    return {row.name: table1_circuit(row.name, scale, seed, library)
            for row in rows}

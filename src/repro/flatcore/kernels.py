"""Vectorized analysis kernels over a :class:`~repro.flatcore.arena.FlatCircuit`.

Each kernel is a drop-in replacement for one object-core stage and is
held to a *bit-identity* contract: given the same inputs it produces
exactly the values (and, where relevant, the same dict orders) the
object engines produce -- the differential suite in ``tests/flatcore``
pins this on the whole committed corpus.  The bit-identity rules:

* packed-signature logic is pure ``uint64`` bitwise algebra, which is
  exact and associative, so grouped evaluation order is free;
* scalar float *accumulators* (SER sums) must add in the object core's
  sequential element order -- ``np.sum`` is pairwise and would drift in
  the last ulp -- so sums run over ``.tolist()`` in declaration order
  while the per-element products stay vectorized (IEEE-754 elementwise
  ops match Python's scalar ops bit for bit);
* :class:`~repro.core.intervals.IntervalSet` normalization is confluent
  under pre-merging, so building each net's ELW from raw shifted
  endpoint pairs in one constructor call matches the object core's
  shift-then-union exactly.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from ..core.intervals import IntervalSet
from ..errors import FlatCoreError, SimulationError
from ..netlist.cell_library import SUPPORTED_OPS
from ..sim.bitvec import _tail_mask, n_words, popcount
from .arena import FlatCircuit

_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def _reduce_group(op: str, ins: np.ndarray) -> np.ndarray:
    """Evaluate one ``(op, arity)`` group on gathered input signatures.

    ``ins`` is ``[n_gates_in_group, arity, n_words]``; the result is
    ``[n_gates_in_group, n_words]`` with padding bits possibly set for
    inverting ops (callers trim, mirroring the object core).
    """
    if op == "BUF":
        return ins[:, 0]
    if op == "NOT":
        return ins[:, 0] ^ _ONES
    # Two-input groups dominate real netlists; a direct binary op skips
    # the ufunc-reduce machinery (bitwise algebra, so same bits).
    two = ins.shape[1] == 2
    if op in ("AND", "NAND"):
        out = (ins[:, 0] & ins[:, 1]) if two \
            else np.bitwise_and.reduce(ins, axis=1)
        if op == "NAND":
            out = out ^ _ONES
        return out
    if op in ("OR", "NOR"):
        out = (ins[:, 0] | ins[:, 1]) if two \
            else np.bitwise_or.reduce(ins, axis=1)
        if op == "NOR":
            out = out ^ _ONES
        return out
    if op in ("XOR", "XNOR"):
        out = (ins[:, 0] ^ ins[:, 1]) if two \
            else np.bitwise_xor.reduce(ins, axis=1)
        if op == "XNOR":
            out = out ^ _ONES
        return out
    raise FlatCoreError(f"no grouped evaluator for op {op!r}")


# ----------------------------------------------------------------------
# Logic simulation
# ----------------------------------------------------------------------

def _level_sweep(flat: FlatCircuit, value_matrix: np.ndarray,
                 words: int, tail: np.uint64,
                 forced_by_level: Mapping[int, list] | None = None) -> None:
    """Evaluate every gate level in place on ``[n_nodes, words]``.

    Input and register rows must already hold their signatures; gate
    rows are overwritten level by level.  ``forced_by_level`` optionally
    injects per-level overrides after that level evaluates (a forced
    gate's readers all sit at strictly higher levels)."""
    for level_plan in flat.plans:
        for plan in level_plan.groups:
            count = len(plan.gates)
            if plan.op == "CONST0":
                out = np.zeros((count, words), dtype=np.uint64)
            elif plan.op == "CONST1":
                out = np.full((count, words), _ONES, dtype=np.uint64)
            else:
                out = _reduce_group(plan.op, value_matrix[plan.fanin])
            out[:, -1] &= tail
            value_matrix[plan.gates] = out
        if forced_by_level:
            for node, sig in forced_by_level.get(level_plan.level, ()):
                value_matrix[node] = sig


def record_frames_flat(flat: FlatCircuit, n_frames: int, n_patterns: int,
                       warmup: int, rng: np.random.Generator,
                       ) -> list[np.ndarray]:
    """Matrix-native replacement for ``repro.sim.odc._record_frames``.

    Runs the warmup and recorded cycles entirely on ``[n_nodes, words]``
    matrices -- no per-net dicts, no per-register copies.  Bit-identity
    with the object recorder holds because the RNG stream is drawn
    identically (one :func:`random_patterns` call per primary input, in
    declaration order, per cycle) and the register clocking rule is the
    same gather (``state = values[dff_d]``) the object simulator
    expresses one ``.copy()`` at a time.
    """
    words = n_words(n_patterns)
    tail = _tail_mask(n_patterns)
    n_inputs = flat.n_inputs
    dff_base = n_inputs + flat.n_gates

    ones_row = np.full(words, _ONES, dtype=np.uint64)
    ones_row[-1] &= tail
    # reset_state: init=1 registers power up all-ones, the rest all-zero
    state = np.zeros((flat.n_dffs, words), dtype=np.uint64)
    state[flat.dff_init.astype(bool)] = ones_row

    value_matrix = np.zeros((flat.n_nodes, words), dtype=np.uint64)
    frames: list[np.ndarray] = []
    for cycle in range(warmup + n_frames):
        if n_inputs:
            # One batched draw per cycle.  PCG64 fills a C-contiguous
            # uint64 request word by word from the same stream, so this
            # consumes the generator identically to one
            # ``random_patterns`` call per input (pinned by
            # ``test_batched_input_draws_match_per_input_draws``).
            draws = rng.integers(0, 2 ** 64, size=(n_inputs, words),
                                 dtype=np.uint64)
            draws[:, -1] &= tail
            value_matrix[:n_inputs] = draws
        value_matrix[dff_base:] = state
        _level_sweep(flat, value_matrix, words, tail)
        state = value_matrix[flat.dff_d]  # fancy indexing: a fresh copy
        if cycle >= warmup:
            frames.append(value_matrix.copy())
    return frames


def simulate_comb_flat(flat: FlatCircuit,
                       values: Mapping[str, np.ndarray],
                       n_patterns: int,
                       force: Mapping[str, np.ndarray] | None = None,
                       ) -> dict[str, np.ndarray]:
    """Level-sweep replacement for :func:`repro.sim.logicsim.simulate_comb`.

    Signatures for all nodes live in one ``[n_nodes, n_words]`` matrix;
    each topological level evaluates as a handful of gathered numpy
    expressions.  The returned dict matches the object core exactly:
    inputs/registers alias the caller's arrays, forced nets alias the
    force arrays (untrimmed), and gate entries are trimmed rows of the
    value matrix (disjoint -- no aliasing between gates).
    """
    words = n_words(n_patterns)
    tail = _tail_mask(n_patterns)
    n_inputs, n_gates = flat.n_inputs, flat.n_gates
    dff_base = n_inputs + n_gates
    value_matrix = np.zeros((flat.n_nodes, words), dtype=np.uint64)

    result: dict[str, np.ndarray] = {}
    for node in range(n_inputs):
        net = flat.names[node]
        if net not in values:
            raise SimulationError(f"missing value for primary input {net!r}")
        sig = values[net]
        value_matrix[node] = sig
        result[net] = sig
    for k in range(flat.n_dffs):
        net = flat.names[dff_base + k]
        if net not in values:
            raise SimulationError(f"missing value for flip-flop {net!r}")
        sig = values[net]
        value_matrix[dff_base + k] = sig
        result[net] = sig

    forced_by_level: dict[int, list[tuple[int, np.ndarray]]] = {}
    if force:
        for net, sig in force.items():
            node = flat.index.get(net)
            if node is None:
                continue
            if n_inputs <= node < dff_base:
                lvl = int(flat.level[node - n_inputs])
                forced_by_level.setdefault(lvl, []).append((node, sig))
            else:
                value_matrix[node] = sig
                result[net] = sig

    # A forced gate's own evaluation is discarded; the per-level
    # overwrite inside the sweep reproduces the object core's
    # skip-and-alias semantics (padding included).
    _level_sweep(flat, value_matrix, words, tail, forced_by_level)

    for node in flat.topo.tolist():
        net = flat.names[node]
        if force and net in force:
            result[net] = force[net]
        else:
            result[net] = value_matrix[node]
    return result


# ----------------------------------------------------------------------
# Observability (backward ODC sweep)
# ----------------------------------------------------------------------

@dataclass
class _SensGroup:
    """Sensitization edges sharing (op, arity), evaluated together."""

    op: str
    edge_ids: np.ndarray   # rows of the global edge arrays
    gate_nodes: np.ndarray
    fanin: np.ndarray      # [n_edges_in_group, arity]
    flip: np.ndarray       # bool mask: ports driven by the edge's source


@dataclass
class _ScatterStage:
    """One reverse-sweep stage: all edges whose source sits at a level."""

    edge_order: np.ndarray   # edge ids sorted by source node
    reader_nodes: np.ndarray
    src_nodes: np.ndarray    # distinct sources, ascending
    starts: np.ndarray       # reduceat segment starts into edge_order


def _sens_plans(flat: FlatCircuit) -> tuple[list[_SensGroup],
                                            list[_ScatterStage]]:
    """Build (and memoize on the arena) the observability sweep plans."""
    cached = flat._memo.get("sens_plans")
    if cached is not None:
        return cached

    n_inputs, n_gates = flat.n_inputs, flat.n_gates
    edge_gate, edge_src = flat.edge_gate, flat.edge_src
    n_edges = len(edge_gate)

    groups: list[_SensGroup] = []
    if n_edges:
        ordinals = edge_gate - n_inputs
        keys = flat.op_code[ordinals].astype(np.int64) * (2 ** 32) \
            + flat.arity[ordinals].astype(np.int64)
        for key in np.unique(keys):
            ids = np.nonzero(keys == key)[0]
            code = int(key >> 32)
            arity = int(key & 0xFFFFFFFF)
            lo = flat.fanin_indptr[ordinals[ids]]
            fanin = flat.fanin[lo[:, None] + np.arange(arity)]
            flip = fanin == edge_src[ids][:, None]
            groups.append(_SensGroup(op=SUPPORTED_OPS[code], edge_ids=ids,
                                     gate_nodes=edge_gate[ids],
                                     fanin=fanin, flip=flip))

    # Scatter stages: gate sources by descending level, then all
    # input/register sources (level tag -1) -- the object core's
    # reverse-topo-then-sources order, which OR-commutativity makes a
    # scheduling choice, not a semantic one.  One stable lexsort over
    # (descending level, source) replaces a per-level edge scan, which
    # on deep circuits (10^4+ levels) was quadratic in practice.
    stages: list[_ScatterStage] = []
    if n_edges:
        src_level = np.full(n_edges, -1, dtype=np.int64)
        is_gate_src = (edge_src >= n_inputs) & (edge_src < n_inputs + n_gates)
        src_level[is_gate_src] = flat.level[edge_src[is_gate_src] - n_inputs]
        order_all = np.lexsort((edge_src, -src_level))
        level_sorted = src_level[order_all]
        src_sorted = edge_src[order_all]
        cuts = np.nonzero(np.diff(level_sorted))[0] + 1
        for a, b in zip(np.concatenate(([0], cuts)).tolist(),
                        np.concatenate((cuts, [n_edges])).tolist()):
            order = order_all[a:b]
            srcs = src_sorted[a:b]
            # srcs is sorted: segment starts fall where the value changes
            starts = np.concatenate(
                ([0], np.nonzero(np.diff(srcs))[0] + 1))
            stages.append(_ScatterStage(edge_order=order,
                                        reader_nodes=edge_gate[order],
                                        src_nodes=srcs[starts],
                                        starts=starts))

    flat._memo["sens_plans"] = (groups, stages)
    return groups, stages


def observability_flat(flat: FlatCircuit,
                       frames: list[np.ndarray],
                       n_frames: int, n_patterns: int, keep_masks: bool,
                       ) -> tuple[dict[str, float],
                                  dict[str, np.ndarray] | None]:
    """Vectorized backward ODC sweep over recorded frame matrices.

    ``frames`` holds one ``[n_nodes, words]`` value matrix per cycle
    (:func:`record_frames_flat`).  Mirrors
    ``repro.sim.odc._observability_impl`` bit for bit: per frame,
    per-edge sensitization masks are evaluated in grouped numpy
    expressions, base masks seed primary outputs (and, on the final
    frame, register reads), and a reverse level sweep OR-scatters
    ``sens & reader_mask`` into each source net.
    """
    words = n_words(n_patterns)
    tail = _tail_mask(n_patterns)
    n_nodes = flat.n_nodes
    n_dffs = flat.n_dffs
    dff_base = flat.n_inputs + flat.n_gates
    groups, stages = _sens_plans(flat)

    ones_row = np.full(words, _ONES, dtype=np.uint64)
    ones_row[-1] &= tail
    po_nodes = np.nonzero(flat.is_po)[0]
    dff_rows = np.arange(dff_base, dff_base + n_dffs)

    sens = np.zeros((flat.n_edges, words), dtype=np.uint64)
    next_masks = np.zeros((n_dffs, words), dtype=np.uint64)
    masks = np.zeros((n_nodes, words), dtype=np.uint64)
    for t in range(n_frames - 1, -1, -1):
        value_matrix = frames[t]
        last = t == n_frames - 1

        for group in groups:
            ins = value_matrix[group.fanin]      # fresh gather
            ins[group.flip] ^= _ONES
            flipped = _reduce_group(group.op, ins)
            flipped[:, -1] &= tail
            sens[group.edge_ids] = value_matrix[group.gate_nodes] ^ flipped

        masks = np.zeros((n_nodes, words), dtype=np.uint64)
        if len(po_nodes):
            masks[po_nodes] = ones_row
        if n_dffs:
            contrib = np.broadcast_to(ones_row, (n_dffs, words)) if last \
                else next_masks
            np.bitwise_or.at(masks, flat.dff_d, contrib)

        for stage in stages:
            contrib = sens[stage.edge_order] & masks[stage.reader_nodes]
            merged = np.bitwise_or.reduceat(contrib, stage.starts, axis=0)
            masks[stage.src_nodes] |= merged

        if n_dffs:
            next_masks = masks[dff_rows].copy()

    if hasattr(np, "bitwise_count"):
        counts = np.bitwise_count(masks).sum(axis=1)
    else:  # pragma: no cover - numpy < 2 fallback
        counts = np.array([popcount(row) for row in masks], dtype=np.int64)
    # Dict order matches the object core: reverse-topo gates, then
    # primary inputs, then registers.
    node_order = list(reversed(flat.topo.tolist())) \
        + list(range(flat.n_inputs)) + dff_rows.tolist()
    obs = {flat.names[node]: int(counts[node]) / float(n_patterns)
           for node in node_order}
    kept = {flat.names[node]: masks[node].copy() for node in node_order} \
        if keep_masks else None
    return obs, kept


# ----------------------------------------------------------------------
# Error-latching windows (eq. 3)
# ----------------------------------------------------------------------

def _elw_readers(flat: FlatCircuit) -> list[list[tuple[int, float]]]:
    """Per node: ``(reader_gate_node, -delay(reader))`` pairs, memoized."""
    cached = flat._memo.get("elw_readers")
    if cached is not None:
        return cached
    neg_delay = (-flat.gate_delay).tolist()
    readers = flat.reader.tolist()
    indptr = flat.reader_indptr.tolist()
    n_inputs = flat.n_inputs
    nested = [[(r, neg_delay[r - n_inputs])
               for r in readers[indptr[node]:indptr[node + 1]]]
              for node in range(flat.n_nodes)]
    flat._memo["elw_readers"] = nested
    return nested


def circuit_elws_flat(flat: FlatCircuit,
                      window: IntervalSet) -> dict[str, IntervalSet]:
    """Flat replacement for ``repro.core.elw._circuit_elws_impl``.

    Walks nets in the same reverse-topological order, but builds each
    net's ELW with a *single* :class:`IntervalSet` construction from raw
    shifted endpoint pairs -- sound because interval-union normalization
    is confluent: pre-merging any subset (what the object core's
    intermediate ``shift``/``union`` sets do) never changes the final
    merged intervals.  Shifts use the identical float expression
    ``endpoint + (-delay)``.
    """
    readers = _elw_readers(flat)
    window_pairs = tuple(window.intervals)
    is_po = flat.is_po
    dff_read = flat.dff_read
    by_node: list[IntervalSet | None] = [None] * flat.n_nodes

    dff_base = flat.n_inputs + flat.n_gates
    node_order = list(reversed(flat.topo.tolist())) \
        + list(range(flat.n_inputs)) \
        + list(range(dff_base, dff_base + flat.n_dffs))
    empty = IntervalSet.empty()
    for node in node_order:
        pairs = list(window_pairs) if (is_po[node] or dff_read[node]) else []
        for reader, offset in readers[node]:
            for left, right in by_node[reader].intervals:
                pairs.append((left + offset, right + offset))
        by_node[node] = IntervalSet(pairs) if pairs else empty
    return {flat.names[node]: by_node[node] for node in node_order}


# ----------------------------------------------------------------------
# SER aggregation (eq. 4)
# ----------------------------------------------------------------------

def ser_totals_flat(flat: FlatCircuit, obs_full: Mapping[str, float],
                    elws: Mapping[str, IntervalSet], model_name: str,
                    unit: float, base_reg_err: float, phi: float,
                    ) -> tuple[dict[str, float], float, float, float]:
    """Vectorized eq. (4) aggregation.

    Returns ``(per_element, comb, reg, no_timing)`` exactly as the
    object loop in ``repro.ser.analysis._analyze_ser_impl`` computes
    them: per-element products are elementwise float64 (bit-identical
    to Python scalar arithmetic), the running sums accumulate
    sequentially in declaration order.
    """
    n_inputs, n_gates = flat.n_inputs, flat.n_gates
    gate_names = flat.names[n_inputs:n_inputs + n_gates]
    dff_names = flat.names[n_inputs + n_gates:]

    if model_name == "library":
        err = flat.gate_raw_ser * unit
    elif model_name == "uniform":
        err = np.full(n_gates, unit, dtype=np.float64)
    elif model_name == "area":
        err = (flat.arity + 1.0) * unit
    else:
        raise FlatCoreError(f"no flat evaluator for rate model "
                            f"{model_name!r}")
    obs_arr = np.array([obs_full[name] for name in gate_names],
                       dtype=np.float64)
    meas = np.array([elws[name].measure for name in gate_names],
                    dtype=np.float64)
    values = obs_arr * err * (meas / phi)
    no_timing_terms = obs_arr * err

    per_element: dict[str, float] = {}
    comb = reg = 0.0
    no_timing = 0.0
    for name, value in zip(gate_names, values.tolist()):
        per_element[name] = value
        comb += value
    for term in no_timing_terms.tolist():
        no_timing += term

    dff_obs = np.array([obs_full[name] for name in dff_names],
                       dtype=np.float64)
    dff_meas = np.array([elws[name].measure for name in dff_names],
                        dtype=np.float64)
    dff_values = dff_obs * base_reg_err * (dff_meas / phi)
    dff_no_timing = dff_obs * base_reg_err
    for name, value in zip(dff_names, dff_values.tolist()):
        per_element[name] = value
        reg += value
    for term in dff_no_timing.tolist():
        no_timing += term
    return per_element, comb, reg, no_timing

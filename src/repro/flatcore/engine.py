"""Engine selection: flat kernels vs. the object core.

The active mode is a process-global, mirroring the analysis-cache
activation pattern (:mod:`repro.cache.store`):

* ``"flat"``   -- always lower; a lowering failure raises;
* ``"object"`` -- never lower (the original per-gate Python engines);
* ``"auto"``   -- the default: lower when possible, fall back to the
  object core (with a one-time warning per circuit) when lowering
  raises :class:`~repro.errors.FlatCoreError`.

The mode deliberately never enters any cache key: the two cores are
bit-identical (the differential suite enforces it), so a flat result
must hit -- and be hit by -- the same cached entries as an object one.
Dispatch therefore happens *inside* the ``cached()``-wrapped analysis
impls, beneath the key computation.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager

from ..errors import FlatCoreError
from ..netlist.circuit import Circuit
from .arena import FlatCircuit, lower

#: Recognized engine modes (CLI ``--core`` choices).
MODES = ("flat", "object", "auto")

_MODE = "auto"


def current_mode() -> str:
    """The active engine mode."""
    return _MODE


def set_core_mode(mode: str) -> str:
    """Set the engine mode; returns the previous one."""
    global _MODE
    if mode not in MODES:
        raise FlatCoreError(
            f"unknown core mode {mode!r}; choose from {MODES}")
    previous = _MODE
    _MODE = mode
    return previous


@contextmanager
def core_mode(mode: str):
    """Scoped engine mode (restores the previous mode on exit)."""
    previous = set_core_mode(mode)
    try:
        yield
    finally:
        set_core_mode(previous)


def flat_for(circuit: Circuit) -> FlatCircuit | None:
    """The memoized arena of ``circuit``, or ``None`` for the object core.

    Lowering results (including failures, in ``auto`` mode) are cached
    on the circuit and invalidated by any structural mutation.  A
    :class:`~repro.errors.CombinationalCycleError` propagates -- the
    object core raises it for the same circuit, so it is not a fallback
    case.
    """
    mode = _MODE
    if mode == "object":
        return None
    flat = getattr(circuit, "_flat_cache", None)
    if flat is not None:
        return flat
    if mode == "auto" and getattr(circuit, "_flat_failed", False):
        return None
    try:
        flat = lower(circuit)
    except FlatCoreError as exc:
        if mode == "flat":
            raise
        circuit._flat_failed = True
        warnings.warn(
            f"flatcore lowering of circuit {circuit.name!r} failed "
            f"({exc}); falling back to the object core", RuntimeWarning,
            stacklevel=2)
        return None
    circuit._flat_cache = flat
    return flat

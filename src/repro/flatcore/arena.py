"""Flat arena representation of a sequential circuit (ROADMAP item 1).

A :class:`FlatCircuit` is the dict/object :class:`~repro.netlist.circuit.
Circuit` lowered to contiguous numpy buffers:

* every net is an integer *node id* -- primary inputs first, then gates
  in declaration order, then flip-flop outputs (the order of
  ``Circuit.nets``);
* per-gate attributes (op code, arity, delay, raw SER) live in flat
  arrays indexed by *gate ordinal* (``node_id - n_inputs``);
* connectivity is CSR: ``fanin`` in port order with duplicates (a net
  feeding two ports appears twice), ``fanout`` as its exact transpose
  plus register data inputs, and ``reader`` holding the *distinct*
  gate readers of each net (the edge set the observability and ELW
  sweeps walk);
* gates are grouped into per-topological-level ``(op, arity)`` plans so
  the kernels in :mod:`repro.flatcore.kernels` evaluate a whole group
  with one vectorized numpy expression.

Lowering is pure and deterministic: the same circuit always produces the
same arrays, and :attr:`FlatCircuit.digest` (sha256 over the source
:func:`~repro.cache.timing_digest` and every buffer) is the
content-address of the lowered form.  :func:`validate_flat` re-derives
each invariant and raises a *located* :class:`~repro.errors.FlatCoreError`
on any deviation, so a corrupted arena can never return a silently wrong
result.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..errors import FlatCoreError
from ..netlist.cell_library import SUPPORTED_OPS
from ..netlist.circuit import Circuit

#: Op name -> integer op code (index into ``SUPPORTED_OPS``).
OP_CODES: dict[str, int] = {op: i for i, op in enumerate(SUPPORTED_OPS)}

#: Format tag mixed into every arena digest; bump on layout changes.
DIGEST_TAG = "flat-v1"


@dataclass
class GatePlan:
    """One vectorizable gate group: same level, op and arity.

    Attributes
    ----------
    op, code, arity:
        Shared op name / op code / fanin count of every gate in the group.
    gates:
        Node ids of the grouped gates (ascending).
    fanin:
        ``[len(gates), arity]`` node-id matrix, port order preserved.
    """

    op: str
    code: int
    arity: int
    gates: np.ndarray
    fanin: np.ndarray


@dataclass
class LevelPlan:
    """All gate groups of one topological level."""

    level: int
    groups: list[GatePlan]


@dataclass
class FlatCircuit:
    """The lowered arena.  See the module docstring for the layout."""

    source_name: str
    source_digest: str
    names: list[str]
    index: dict[str, int]
    n_inputs: int
    n_gates: int
    n_dffs: int
    outputs: list[str]
    # Per-gate arrays, indexed by gate ordinal (node id - n_inputs).
    op_code: np.ndarray
    arity: np.ndarray
    gate_delay: np.ndarray
    gate_raw_ser: np.ndarray
    # CSR connectivity.
    fanin_indptr: np.ndarray
    fanin: np.ndarray
    fanout_indptr: np.ndarray
    fanout: np.ndarray
    reader_indptr: np.ndarray
    reader: np.ndarray
    # Distinct (gate, source) sensitization edges, gate-major order.
    edge_gate: np.ndarray
    edge_src: np.ndarray
    # Registers.
    dff_d: np.ndarray
    dff_init: np.ndarray
    # Per-node flags.
    is_po: np.ndarray
    dff_read: np.ndarray
    # Topology.
    level: np.ndarray
    topo: np.ndarray
    plans: list[LevelPlan]
    # Kernel-private memos (sensitization plans, ELW reader lists).
    _memo: dict = field(default_factory=dict, repr=False)
    _digest: str | None = field(default=None, repr=False)

    @property
    def n_nodes(self) -> int:
        return self.n_inputs + self.n_gates + self.n_dffs

    @property
    def n_edges(self) -> int:
        return len(self.edge_gate)

    def gate_node(self, ordinal: int) -> int:
        """Node id of gate ordinal ``ordinal``."""
        return self.n_inputs + ordinal

    @property
    def digest(self) -> str:
        """sha256 content-address of the arena (layout ``flat-v1``).

        Ties into the existing cache-key scheme: the source circuit's
        :func:`~repro.cache.timing_digest` is the first hashed field, so
        two arenas agree only when their circuits would share analysis
        cache keys *and* every lowered buffer matches bit for bit.
        """
        if self._digest is None:
            h = hashlib.sha256()
            h.update(DIGEST_TAG.encode("utf-8") + b"\0")
            h.update(self.source_digest.encode("utf-8") + b"\0")
            h.update("\0".join(self.names).encode("utf-8") + b"\0\0")
            h.update("\0".join(self.outputs).encode("utf-8") + b"\0\0")
            for tag, arr in (
                    ("op_code", self.op_code), ("arity", self.arity),
                    ("gate_delay", self.gate_delay),
                    ("gate_raw_ser", self.gate_raw_ser),
                    ("fanin_indptr", self.fanin_indptr),
                    ("fanin", self.fanin),
                    ("fanout_indptr", self.fanout_indptr),
                    ("fanout", self.fanout),
                    ("reader_indptr", self.reader_indptr),
                    ("reader", self.reader),
                    ("edge_gate", self.edge_gate),
                    ("edge_src", self.edge_src),
                    ("dff_d", self.dff_d), ("dff_init", self.dff_init),
                    ("is_po", self.is_po), ("dff_read", self.dff_read),
                    ("level", self.level), ("topo", self.topo)):
                h.update(tag.encode("utf-8") + b"\0")
                h.update(np.ascontiguousarray(arr).tobytes())
            self._digest = h.hexdigest()
        return self._digest


def lower(circuit: Circuit) -> FlatCircuit:
    """Lower ``circuit`` to a :class:`FlatCircuit`.

    Raises :class:`~repro.errors.FlatCoreError` when the circuit cannot
    be represented (a gate or register reads an undefined net).  A
    combinational cycle raises
    :class:`~repro.errors.CombinationalCycleError` exactly as the object
    engines would -- that is a property of the circuit, not of the
    lowering, so it is *not* an object-core fallback case.
    """
    from ..cache import timing_digest

    names = circuit.nets
    index = {name: i for i, name in enumerate(names)}
    n_inputs = len(circuit.inputs)
    n_gates = len(circuit.gates)
    n_dffs = len(circuit.dffs)
    n_nodes = n_inputs + n_gates + n_dffs
    if len(index) != n_nodes:
        raise FlatCoreError(
            f"circuit {circuit.name!r}: duplicate net names prevent "
            f"lowering ({n_nodes} nets, {len(index)} distinct)")

    # Topological order first: raises CombinationalCycleError eagerly.
    topo_names = circuit.topo_gates()

    op_code = np.zeros(n_gates, dtype=np.int32)
    arity = np.zeros(n_gates, dtype=np.int32)
    gate_delay = np.zeros(n_gates, dtype=np.float64)
    gate_raw_ser = np.zeros(n_gates, dtype=np.float64)
    fanin_counts = np.zeros(n_gates, dtype=np.int64)

    gates = list(circuit.gates.values())
    # Library rates memoized per (op, arity): the library re-validates
    # arity on every call, which is pure overhead across 10^5 gates
    # drawn from a handful of cell types.
    rates: dict[tuple[str, int], tuple[float, float]] = {}
    for g, gate in enumerate(gates):
        code = OP_CODES.get(gate.op)
        if code is None:
            raise FlatCoreError(
                f"gate {g} ({gate.name!r}): unsupported op {gate.op!r}")
        n_ins = len(gate.inputs)
        op_code[g] = code
        arity[g] = n_ins
        fanin_counts[g] = n_ins
        key = (gate.op, n_ins)
        rate = rates.get(key)
        if rate is None:
            rate = (circuit.library.delay(gate.op, n_ins),
                    circuit.library.raw_ser(gate.op, n_ins))
            rates[key] = rate
        gate_delay[g] = rate[0]
        gate_raw_ser[g] = rate[1]

    fanin_indptr = np.zeros(n_gates + 1, dtype=np.int64)
    np.cumsum(fanin_counts, out=fanin_indptr[1:])
    try:
        fanin_list = [index[src_name]
                      for gate in gates for src_name in gate.inputs]
    except KeyError:
        # Slow diagnostic pass: locate the offending gate by ordinal.
        for g, gate in enumerate(gates):
            for src_name in gate.inputs:
                if src_name not in index:
                    raise FlatCoreError(
                        f"gate {g} ({gate.name!r}): input net "
                        f"{src_name!r} is undefined") from None
        raise  # pragma: no cover - unreachable
    fanin = np.asarray(fanin_list, dtype=np.int64) \
        if fanin_list else np.zeros(0, dtype=np.int64)
    edge_gate_list: list[int] = []
    edge_src_list: list[int] = []
    for g, gate in enumerate(gates):
        node = n_inputs + g
        srcs = gate.inputs if len(gate.inputs) == 1 \
            else dict.fromkeys(gate.inputs)
        for src_name in srcs:
            edge_gate_list.append(node)
            edge_src_list.append(index[src_name])
    edge_gate = np.asarray(edge_gate_list, dtype=np.int64)
    edge_src = np.asarray(edge_src_list, dtype=np.int64)

    dff_d = np.zeros(n_dffs, dtype=np.int64)
    dff_init = np.zeros(n_dffs, dtype=np.int8)
    for k, dff in enumerate(circuit.dffs.values()):
        d = index.get(dff.d)
        if d is None:
            raise FlatCoreError(
                f"dff {k} ({dff.name!r}): data net {dff.d!r} is undefined")
        dff_d[k] = d
        dff_init[k] = dff.init

    # Fanout CSR: the exact transpose of fanin plus register data reads,
    # matching Circuit.fanouts (per connection, gates before dffs).
    # One stable argsort over the concatenated connection list produces
    # exactly what a cursor scatter in (gate, port, dff) order would:
    # per source, readers keep that traversal order.
    dff_base = n_inputs + n_gates
    conn_src = np.concatenate([fanin, dff_d])
    conn_reader = np.concatenate([
        np.repeat(np.arange(n_inputs, dff_base, dtype=np.int64),
                  fanin_counts),
        np.arange(dff_base, dff_base + n_dffs, dtype=np.int64)])
    fanout_counts = np.bincount(conn_src, minlength=n_nodes) \
        if len(conn_src) else np.zeros(n_nodes, dtype=np.int64)
    fanout_indptr = np.zeros(n_nodes + 1, dtype=np.int64)
    np.cumsum(fanout_counts, out=fanout_indptr[1:])
    fanout = conn_reader[np.argsort(conn_src, kind="stable")]

    # Distinct-reader CSR: sensitization edges regrouped by source net.
    # A stable sort keeps each net's readers in gate declaration order.
    if len(edge_src):
        order = np.argsort(edge_src, kind="stable")
        reader_counts = np.zeros(n_nodes, dtype=np.int64)
        np.add.at(reader_counts, edge_src, 1)
        reader_indptr = np.zeros(n_nodes + 1, dtype=np.int64)
        np.cumsum(reader_counts, out=reader_indptr[1:])
        reader = edge_gate[order]
    else:
        reader_indptr = np.zeros(n_nodes + 1, dtype=np.int64)
        reader = np.zeros(0, dtype=np.int64)

    is_po = np.zeros(n_nodes, dtype=bool)
    for net in circuit.outputs:
        node = index.get(net)
        if node is None:
            raise FlatCoreError(f"primary output {net!r} is undefined")
        is_po[node] = True
    dff_read = np.zeros(n_nodes, dtype=bool)
    dff_read[dff_d] = True

    # Topological levels: sources are level 0, a gate one past its
    # deepest gate fanin.  Plain-list arithmetic: per-gate numpy calls
    # on 2-3-element slices cost more than the whole sweep.
    level_list = [0] * n_gates
    node_level = [0] * n_nodes
    topo_list = [0] * n_gates
    indptr_list = fanin_indptr.tolist()
    for t, gate_name in enumerate(topo_names):
        node = index[gate_name]
        g = node - n_inputs
        lo, hi = indptr_list[g], indptr_list[g + 1]
        deepest = max((node_level[s] for s in fanin_list[lo:hi]), default=0)
        level_list[g] = deepest + 1
        node_level[node] = deepest + 1
        topo_list[t] = node
    level = np.asarray(level_list, dtype=np.int32) \
        if n_gates else np.zeros(0, dtype=np.int32)
    topo = np.asarray(topo_list, dtype=np.int64) \
        if n_gates else np.zeros(0, dtype=np.int64)

    plans = _build_plans(op_code, arity, fanin_indptr, fanin, level,
                         n_inputs, n_gates)

    return FlatCircuit(
        source_name=circuit.name, source_digest=timing_digest(circuit),
        names=names, index=index, n_inputs=n_inputs, n_gates=n_gates,
        n_dffs=n_dffs, outputs=list(circuit.outputs),
        op_code=op_code, arity=arity, gate_delay=gate_delay,
        gate_raw_ser=gate_raw_ser,
        fanin_indptr=fanin_indptr, fanin=fanin,
        fanout_indptr=fanout_indptr, fanout=fanout,
        reader_indptr=reader_indptr, reader=reader,
        edge_gate=edge_gate, edge_src=edge_src,
        dff_d=dff_d, dff_init=dff_init,
        is_po=is_po, dff_read=dff_read,
        level=level, topo=topo, plans=plans)


def _build_plans(op_code: np.ndarray, arity: np.ndarray,
                 fanin_indptr: np.ndarray, fanin: np.ndarray,
                 level: np.ndarray, n_inputs: int,
                 n_gates: int) -> list[LevelPlan]:
    """Group gates into per-level ``(op, arity)`` evaluation plans."""
    plans: list[LevelPlan] = []
    if n_gates == 0:
        return plans
    ordinals = np.arange(n_gates, dtype=np.int64)
    for lvl in np.unique(level):
        at_level = ordinals[level == lvl]
        groups: list[GatePlan] = []
        keys = op_code[at_level].astype(np.int64) * (2 ** 32) \
            + arity[at_level].astype(np.int64)
        for key in np.unique(keys):
            members = at_level[keys == key]
            code = int(key >> 32)
            n_in = int(key & 0xFFFFFFFF)
            if n_in:
                fmat = np.zeros((len(members), n_in), dtype=np.int64)
                for row, g in enumerate(members.tolist()):
                    lo = fanin_indptr[g]
                    fmat[row] = fanin[lo:lo + n_in]
            else:
                fmat = np.zeros((len(members), 0), dtype=np.int64)
            groups.append(GatePlan(op=SUPPORTED_OPS[code], code=code,
                                   arity=n_in,
                                   gates=members + n_inputs, fanin=fmat))
        plans.append(LevelPlan(level=int(lvl), groups=groups))
    return plans


def _fail(where: str, message: str) -> None:
    raise FlatCoreError(f"flatcore validation failed at {where}: {message}")


def validate_flat(flat: FlatCircuit, circuit: Circuit | None = None) -> None:
    """Check every arena invariant; raise a located error on violation.

    Structural checks need only the arena itself: index bounds, CSR
    monotonicity, fanin/fanout transpose consistency, distinct-reader
    consistency, strict level monotonicity along every edge, and plan
    coverage.  When ``circuit`` is given, every lowered value is also
    cross-checked against the source netlist and its cell library, so a
    mutation of *any single arena entry* is caught and located.
    """
    n_inputs, n_gates, n_dffs = flat.n_inputs, flat.n_gates, flat.n_dffs
    n_nodes = flat.n_nodes
    dff_base = n_inputs + n_gates

    if len(flat.names) != n_nodes:
        _fail("names", f"{len(flat.names)} names for {n_nodes} nodes")
    for tag, arr, length in (
            ("op_code", flat.op_code, n_gates),
            ("arity", flat.arity, n_gates),
            ("gate_delay", flat.gate_delay, n_gates),
            ("gate_raw_ser", flat.gate_raw_ser, n_gates),
            ("fanin_indptr", flat.fanin_indptr, n_gates + 1),
            ("fanout_indptr", flat.fanout_indptr, n_nodes + 1),
            ("reader_indptr", flat.reader_indptr, n_nodes + 1),
            ("dff_d", flat.dff_d, n_dffs),
            ("dff_init", flat.dff_init, n_dffs),
            ("is_po", flat.is_po, n_nodes),
            ("dff_read", flat.dff_read, n_nodes),
            ("level", flat.level, n_gates),
            ("topo", flat.topo, n_gates)):
        if len(arr) != length:
            _fail(tag, f"length {len(arr)}, expected {length}")
    for tag, indptr, data in (
            ("fanin_indptr", flat.fanin_indptr, flat.fanin),
            ("fanout_indptr", flat.fanout_indptr, flat.fanout),
            ("reader_indptr", flat.reader_indptr, flat.reader)):
        if indptr[0] != 0 or np.any(np.diff(indptr) < 0):
            _fail(tag, "indptr is not monotone from 0")
        if indptr[-1] != len(data):
            _fail(tag, f"indptr ends at {int(indptr[-1])} but data has "
                       f"{len(data)} entries")
    for tag, arr in (("fanin", flat.fanin), ("fanout", flat.fanout),
                     ("reader", flat.reader), ("dff_d", flat.dff_d),
                     ("edge_gate", flat.edge_gate),
                     ("edge_src", flat.edge_src), ("topo", flat.topo)):
        if len(arr) and (arr.min() < 0 or arr.max() >= n_nodes):
            bad = int(np.argmax((arr < 0) | (arr >= n_nodes)))
            _fail(f"{tag}[{bad}]",
                  f"node id {int(arr[bad])} out of range [0, {n_nodes})")

    for g in range(n_gates):
        code = int(flat.op_code[g])
        name = flat.names[n_inputs + g]
        if not 0 <= code < len(SUPPORTED_OPS):
            _fail(f"op_code[{g}] (gate {name!r})",
                  f"op code {code} out of range")
        n_in = int(flat.fanin_indptr[g + 1] - flat.fanin_indptr[g])
        if int(flat.arity[g]) != n_in:
            _fail(f"arity[{g}] (gate {name!r})",
                  f"arity {int(flat.arity[g])} != fanin CSR width {n_in}")

    # Levels: every gate strictly deeper than its deepest gate fanin.
    node_level = np.zeros(n_nodes, dtype=np.int64)
    node_level[n_inputs:dff_base] = flat.level
    for g in range(n_gates):
        lo, hi = flat.fanin_indptr[g], flat.fanin_indptr[g + 1]
        deepest = int(node_level[flat.fanin[lo:hi]].max()) if hi > lo else 0
        if int(flat.level[g]) != deepest + 1:
            _fail(f"level[{g}] (gate {flat.names[n_inputs + g]!r})",
                  f"level {int(flat.level[g])} != 1 + deepest fanin "
                  f"level {deepest}")

    # topo must be a permutation of the gate node ids respecting levels.
    seen = np.zeros(n_gates, dtype=bool)
    prev_level = 0
    for t, node in enumerate(flat.topo.tolist()):
        if not n_inputs <= node < dff_base:
            _fail(f"topo[{t}]", f"node {node} is not a gate")
        g = node - n_inputs
        if seen[g]:
            _fail(f"topo[{t}]", f"gate {flat.names[node]!r} repeated")
        seen[g] = True
        if int(flat.level[g]) < prev_level:
            _fail(f"topo[{t}]",
                  f"level {int(flat.level[g])} after level {prev_level}")
        prev_level = max(prev_level, int(flat.level[g]))
    if n_gates and not seen.all():
        g = int(np.argmin(seen))
        _fail("topo", f"gate {flat.names[n_inputs + g]!r} missing")

    # Fanout must be the exact transpose of fanin + register data reads.
    counts = np.zeros(n_nodes, dtype=np.int64)
    if len(flat.fanin):
        np.add.at(counts, flat.fanin, 1)
    if n_dffs:
        np.add.at(counts, flat.dff_d, 1)
    if np.any(np.diff(flat.fanout_indptr) != counts):
        node = int(np.argmax(np.diff(flat.fanout_indptr) != counts))
        _fail(f"fanout_indptr[{node}] (net {flat.names[node]!r})",
              f"fanout degree {int(np.diff(flat.fanout_indptr)[node])} "
              f"!= fanin-transpose degree {int(counts[node])}")
    for node in range(n_nodes):
        lo, hi = flat.fanout_indptr[node], flat.fanout_indptr[node + 1]
        for reader in flat.fanout[lo:hi].tolist():
            if reader < n_inputs:
                _fail(f"fanout of net {flat.names[node]!r}",
                      f"reader {flat.names[reader]!r} is a primary input")
            if reader < dff_base:
                g = reader - n_inputs
                glo, ghi = flat.fanin_indptr[g], flat.fanin_indptr[g + 1]
                if node not in flat.fanin[glo:ghi]:
                    _fail(f"fanout of net {flat.names[node]!r}",
                          f"gate {flat.names[reader]!r} does not read it")
            elif int(flat.dff_d[reader - dff_base]) != node:
                _fail(f"fanout of net {flat.names[node]!r}",
                      f"dff {flat.names[reader]!r} does not read it")

    # Distinct-reader CSR and sensitization edges must agree with fanin.
    expected_edges: list[tuple[int, int]] = []
    for g in range(n_gates):
        lo, hi = flat.fanin_indptr[g], flat.fanin_indptr[g + 1]
        for src in dict.fromkeys(flat.fanin[lo:hi].tolist()):
            expected_edges.append((n_inputs + g, src))
    got_edges = list(zip(flat.edge_gate.tolist(), flat.edge_src.tolist()))
    if sorted(got_edges) != sorted(expected_edges):
        _fail("edge_gate/edge_src",
              f"{len(got_edges)} edges do not match the "
              f"{len(expected_edges)} distinct (gate, source) pairs "
              f"of the fanin CSR")
    reader_pairs = []
    for node in range(n_nodes):
        lo, hi = flat.reader_indptr[node], flat.reader_indptr[node + 1]
        reader_pairs.extend((int(r), node) for r in flat.reader[lo:hi])
    if sorted(reader_pairs) != sorted(expected_edges):
        _fail("reader", "distinct-reader CSR does not transpose the "
                        "sensitization edge set")

    # Plans must cover every gate exactly once with matching attributes.
    covered = np.zeros(n_gates, dtype=np.int64)
    for lp in flat.plans:
        for plan in lp.groups:
            for row, node in enumerate(plan.gates.tolist()):
                if not n_inputs <= node < dff_base:
                    _fail(f"plan level {lp.level}",
                          f"node {node} is not a gate")
                g = node - n_inputs
                covered[g] += 1
                if int(flat.level[g]) != lp.level:
                    _fail(f"plan for gate {flat.names[node]!r}",
                          f"listed at level {lp.level}, gate level is "
                          f"{int(flat.level[g])}")
                if int(flat.op_code[g]) != plan.code \
                        or int(flat.arity[g]) != plan.arity:
                    _fail(f"plan for gate {flat.names[node]!r}",
                          "op/arity does not match the gate arrays")
                lo = flat.fanin_indptr[g]
                if not np.array_equal(plan.fanin[row],
                                      flat.fanin[lo:lo + plan.arity]):
                    _fail(f"plan for gate {flat.names[node]!r}",
                          "plan fanin row does not match the fanin CSR")
    if n_gates and np.any(covered != 1):
        g = int(np.argmax(covered != 1))
        _fail("plans", f"gate {flat.names[n_inputs + g]!r} covered "
                       f"{int(covered[g])} times")

    if circuit is not None:
        _cross_check(flat, circuit)


def _cross_check(flat: FlatCircuit, circuit: Circuit) -> None:
    """Compare every lowered value against the source netlist."""
    if flat.names != circuit.nets:
        _fail("names", "node order does not match Circuit.nets")
    if flat.outputs != list(circuit.outputs):
        _fail("outputs", "primary output list does not match")
    if (flat.n_inputs, flat.n_gates, flat.n_dffs) != \
            (len(circuit.inputs), len(circuit.gates), len(circuit.dffs)):
        _fail("shape", "element counts do not match the circuit")
    for g, gate in enumerate(circuit.gates.values()):
        where = f"gate {g} ({gate.name!r})"
        if SUPPORTED_OPS[int(flat.op_code[g])] != gate.op:
            _fail(where, f"op {SUPPORTED_OPS[int(flat.op_code[g])]!r} "
                         f"!= source op {gate.op!r}")
        lo, hi = flat.fanin_indptr[g], flat.fanin_indptr[g + 1]
        lowered = [flat.names[i] for i in flat.fanin[lo:hi]]
        if lowered != list(gate.inputs):
            _fail(where, f"fanin {lowered} != source inputs "
                         f"{list(gate.inputs)}")
        want_delay = circuit.library.delay(gate.op, len(gate.inputs))
        if float(flat.gate_delay[g]) != want_delay:
            _fail(where, f"delay {float(flat.gate_delay[g])!r} != "
                         f"library delay {want_delay!r}")
        want_ser = circuit.library.raw_ser(gate.op, len(gate.inputs))
        if float(flat.gate_raw_ser[g]) != want_ser:
            _fail(where, f"raw SER {float(flat.gate_raw_ser[g])!r} != "
                         f"library raw SER {want_ser!r}")
    for k, dff in enumerate(circuit.dffs.values()):
        where = f"dff {k} ({dff.name!r})"
        if flat.names[int(flat.dff_d[k])] != dff.d:
            _fail(where, f"data net "
                         f"{flat.names[int(flat.dff_d[k])]!r} != {dff.d!r}")
        if int(flat.dff_init[k]) != dff.init:
            _fail(where, f"init {int(flat.dff_init[k])} != {dff.init}")
    po = {flat.names[i] for i in np.nonzero(flat.is_po)[0]}
    if po != set(circuit.outputs):
        _fail("is_po", f"flag set {sorted(po)} != source outputs "
                       f"{sorted(set(circuit.outputs))}")
    # The exact topo sequence matters beyond level order: downstream
    # dict orders (observability, ELWs) iterate it, so a within-level
    # reorder would silently shift every digest.  Pin it to the source
    # circuit's canonical order.
    want_topo = [flat.index[name] for name in circuit.topo_gates()]
    if flat.topo.tolist() != want_topo:
        _fail("topo", "gate order does not match the source circuit's "
                      "topological order")

"""Flat CSR netlist core with vectorized analysis kernels.

See ``docs/flatcore.md`` for the arena layout, the level-sweep kernel
contract and the engine-selection flag (``--core flat|object|auto``).
"""

from .arena import (DIGEST_TAG, OP_CODES, FlatCircuit, GatePlan, LevelPlan,
                    lower, validate_flat)
from .engine import (MODES, core_mode, current_mode, flat_for,
                     set_core_mode)
from .kernels import (circuit_elws_flat, observability_flat,
                      record_frames_flat, ser_totals_flat,
                      simulate_comb_flat)

__all__ = [
    "DIGEST_TAG", "OP_CODES", "FlatCircuit", "GatePlan", "LevelPlan",
    "lower", "validate_flat",
    "MODES", "core_mode", "current_mode", "flat_for", "set_core_mode",
    "circuit_elws_flat", "observability_flat", "record_frames_flat",
    "ser_totals_flat", "simulate_comb_flat",
]

"""Ablation: exponential jump commits vs unit-step commits.

DESIGN.md calls out the jump-commit design choice: one committed update
can move registers as far as feasibility allows (doubling multipliers),
keeping the committed-update count #J small -- the quantity the paper
reports.  This ablation runs both modes on the same instances and checks
they reach identical objectives while the jump mode commits fewer (or
equal) updates and comparable time; also ablates the restart loop.
"""

import numpy as np
import pytest

from repro.circuits.suites import table1_circuit
from repro.core.constraints import Problem, gains
from repro.core.initialization import initialize
from repro.core.minobswin import minobswin_retiming
from repro.graph.retiming_graph import RetimingGraph
from repro.sim.odc import observability

from .conftest import bench_frames, bench_patterns, bench_scale, once

_ROWS = ("s35932", "b17_opt")
_STATS: list[tuple[str, str, int, int, float]] = []


@pytest.fixture(scope="module")
def instances():
    out = {}
    for name in _ROWS:
        circuit = table1_circuit(name, scale=bench_scale())
        graph = RetimingGraph.from_circuit(circuit)
        obs = observability(circuit, n_frames=bench_frames(),
                            n_patterns=bench_patterns()).obs
        counts = {net: int(round(v * bench_patterns()))
                  for net, v in obs.items()}
        init = initialize(graph, 0.0, circuit.library.hold_time)
        out[name] = (Problem(graph=graph, phi=init.phi, setup=0.0,
                             hold=circuit.library.hold_time,
                             rmin=init.rmin, b=gains(graph, counts)),
                     init.r0)
    return out


@pytest.mark.parametrize("row", _ROWS)
@pytest.mark.parametrize("mode", ["jump", "unit", "single-pass"])
def test_jump_ablation(benchmark, instances, row, mode):
    problem, r0 = instances[row]
    kwargs = {"jump": mode == "jump", "restart": mode != "single-pass"}
    result = once(benchmark, lambda: minobswin_retiming(problem, r0,
                                                        **kwargs))
    _STATS.append((row, mode, result.objective, result.commits,
                   result.runtime))


def test_zz_jump_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_STATS) < 4:
        pytest.skip("sweep incomplete")
    print("\n  row         mode          objective   #J    time")
    for row, mode, objective, commits, runtime in _STATS:
        print(f"  {row:10s}  {mode:12s} {objective:10d}  {commits:3d}  "
              f"{runtime:6.2f}s")
    by_row: dict[str, dict[str, tuple]] = {}
    for row, mode, objective, commits, runtime in _STATS:
        by_row.setdefault(row, {})[mode] = (objective, commits)
    for row, modes in by_row.items():
        if "jump" in modes and "unit" in modes:
            # Same optimum either way; jumping needs no more commits.
            assert modes["jump"][0] == modes["unit"][0], row
            assert modes["jump"][1] <= modes["unit"][1], row
        if "jump" in modes and "single-pass" in modes:
            # Restarting can only help the objective.
            assert modes["jump"][0] >= modes["single-pass"][0], row

"""Flat core vs object core: analysis wall-clock and peak RSS.

Every measured point runs in a fresh child interpreter (peak RSS is
process-monotonic, so attribution needs isolation) and reports, per
scalable corpus family at ~10^3 / 10^4 / 10^5 gates and per core:

* ``lower_s`` -- the one-time ``Circuit -> FlatCircuit`` lowering
  (object core: ~0).  Timed as its own line item because every stage
  below reuses the arena -- folding it into whichever stage happens to
  run first would misattribute a per-circuit cost to a per-call one;
* ``obs_s``  -- the backward-ODC observability sweep;
* ``elw_s``  -- full-circuit ELW construction;
* ``ser_s``  -- the eq. (4) SER aggregation (obs and ELWs pre-supplied,
  so this times exactly the aggregation stage);
* ``peak_rss_mb`` and a ``checksum`` over every float the stages
  produced.

The checksum equality between cores is asserted *unconditionally* --- a
speedup measured against different answers is meaningless.  The >= 5x
speedup gate applies at the 10^5 point for circuits with enough
per-level width to vectorize (``gates_per_level >= MIN_SIMD_WIDTH``).
Deep-narrow circuits -- the ``random`` family runs ~9 gates per
topological level at 10^5, an ~11000-level critical chain -- are bound
by per-level dispatch in *any* level-synchronous engine, so their
points are measured, checksum-gated and reported, but exempt from the
ratio bar.  (CI runs the 10^3 tier via ``REPRO_BENCH_FLATCORE_MAX=1000``
and gates on equality alone; ratios are uploaded as an artifact.)

Environment knobs:

``REPRO_BENCH_FLATCORE_MAX``
    Largest gate-count tier to run (default 100000).
``REPRO_BENCH_FLATCORE_FAMILIES``
    Comma-separated family subset (default: every scalable family).

Run with ``pytest benchmarks/bench_flatcore.py --benchmark-only``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from .bench_corpus_scaling import _shape
from .conftest import once

TARGETS = (1_000, 10_000, 100_000)

#: Analysis depth for the timed stages.  Small on purpose: stage cost
#: is linear in frames x patterns for both cores, so the ratio -- the
#: quantity under test -- does not depend on the depth, and the object
#: core at 10^5 gates is already minutes-scale at paper depth.
FRAMES, PATTERNS = (2, 64)

_CHILD = r"""
import hashlib, json, resource, sys, time

from repro.core.elw import circuit_elws
from repro.corpus.families import CircuitSpec, build_circuit
from repro.flatcore import core_mode, flat_for
from repro.ser.analysis import analyze_ser, extend_obs_to_registers
from repro.sim.odc import observability

family, params, core, frames, patterns = (
    sys.argv[1], json.loads(sys.argv[2]), sys.argv[3],
    int(sys.argv[4]), int(sys.argv[5]))
spec = CircuitSpec(name="bench", family=family, params=params, seed=0)
circuit = build_circuit(spec)
phi = 8.0
setup = circuit.library.setup_time
hold = circuit.library.hold_time

with core_mode(core):
    tl = time.perf_counter()
    flat = flat_for(circuit)  # one-time lowering, its own line item
    t0 = time.perf_counter()
    obs = observability(circuit, n_frames=frames, n_patterns=patterns,
                        seed=0)
    t1 = time.perf_counter()
    elws = circuit_elws(circuit, phi, setup, hold)
    t2 = time.perf_counter()
    ser = analyze_ser(circuit, phi, setup, hold, obs=obs.obs, elws=elws)
    t3 = time.perf_counter()

digest = hashlib.sha256()
for net, value in obs.obs.items():
    digest.update(f"{net}={value!r};".encode())
for net, window in elws.items():
    digest.update(f"{net}={window.intervals!r};".encode())
for net, value in ser.per_element.items():
    digest.update(f"{net}={value!r};".encode())
digest.update(repr((ser.total, ser.comb, ser.reg,
                    ser.total_no_timing)).encode())
rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({
    "gates": circuit.n_gates, "dffs": circuit.n_dffs, "core": core,
    "levels": len(flat.plans) if flat is not None else 0,
    "lower_s": t0 - tl,
    "obs_s": t1 - t0, "elw_s": t2 - t1, "ser_s": t3 - t2,
    "peak_rss_mb": rss_kb / 1024.0,
    "checksum": "sha256:" + digest.hexdigest()}))
"""

STAGES = ("obs", "elw", "ser")

#: Mean gates per topological level below which a circuit is too narrow
#: for level-synchronous SIMD to pay off (the >= 5x bar is not applied).
#: Wide corpus families run 25000+ gates/level at 10^5; ``random`` runs
#: ~9 -- the margin on either side is three orders of magnitude.
MIN_SIMD_WIDTH = 16


def _measure(family: str, n: int, core: str) -> dict:
    src_root = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, family,
         json.dumps(_shape(family, n)), core, str(FRAMES), str(PATTERNS)],
        capture_output=True, text=True, env=env)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def compare_cores(family: str, n: int) -> dict:
    """Measure both cores at one point; checksum equality is mandatory."""
    obj = _measure(family, n, "object")
    flat = _measure(family, n, "flat")
    assert flat["checksum"] == obj["checksum"], \
        f"core results diverge for {family}@{n}"
    point = {"family": family, "target": n, "gates": obj["gates"],
             "dffs": obj["dffs"], "checksum": obj["checksum"],
             "lower_flat_s": flat["lower_s"], "levels": flat["levels"],
             "gates_per_level": obj["gates"] / max(1, flat["levels"])}
    for stage in STAGES:
        point[f"{stage}_object_s"] = obj[f"{stage}_s"]
        point[f"{stage}_flat_s"] = flat[f"{stage}_s"]
        point[f"{stage}_speedup"] = (
            obj[f"{stage}_s"] / flat[f"{stage}_s"]
            if flat[f"{stage}_s"] > 0 else float("inf"))
    point["rss_object_mb"] = obj["peak_rss_mb"]
    point["rss_flat_mb"] = flat["peak_rss_mb"]
    return point


def _max_target() -> int:
    return int(os.environ.get("REPRO_BENCH_FLATCORE_MAX", TARGETS[-1]))


def _families() -> list[str]:
    names = os.environ.get("REPRO_BENCH_FLATCORE_FAMILIES")
    if names:
        return [n.strip() for n in names.split(",") if n.strip()]
    from repro.corpus.families import FAMILIES

    return [name for name, family in FAMILIES.items() if family.scalable]


def _points() -> list[tuple[str, int]]:
    return [(family, n) for family in _families()
            for n in TARGETS if n <= _max_target()]


@pytest.mark.parametrize("family,n", _points(),
                         ids=[f"{f}-{n}" for f, n in _points()])
def test_flatcore_equal_and_fast(benchmark, family, n):
    point = once(benchmark, compare_cores, family, n)
    benchmark.extra_info.update(point)
    ratios = "  ".join(f"{s}={point[f'{s}_speedup']:6.1f}x"
                       for s in STAGES)
    print(f"\n{family:13s} n={n:>7d} gates={point['gates']:>7d} "
          f"{ratios}  lower {point['lower_flat_s']:5.2f}s  "
          f"rss {point['rss_object_mb']:6.1f}->"
          f"{point['rss_flat_mb']:6.1f}MB")
    if n >= 100_000:
        best = max(point[f"{s}_speedup"] for s in STAGES)
        if point["gates_per_level"] >= MIN_SIMD_WIDTH:
            assert best >= 5.0, \
                f"flat core below the 5x bar at 10^5 gates: best {best:.1f}x"
        else:
            print(f"  (deep-narrow: {point['gates_per_level']:.1f} "
                  f"gates/level over {point['levels']} levels -- "
                  f"5x bar not applied)")

"""Sec. VI claim: MinObsWin costs a small constant factor over MinObs.

The paper measures MinObsWin ~2.5x slower than MinObs on average
("the extra computational effort to detect and fix not-P2'"), excluding
the immediate-exit rows.  This benchmark times both engines on identical
mid-size instances and reports the ratio.
"""

import numpy as np
import pytest

from repro.circuits.suites import table1_circuit
from repro.core.constraints import Problem, gains
from repro.core.initialization import initialize
from repro.core.minobs import minobs_retiming
from repro.core.minobswin import minobswin_retiming
from repro.graph.retiming_graph import RetimingGraph
from repro.sim.odc import observability

from .conftest import bench_frames, bench_patterns, bench_scale, once

_TIMES: dict[str, dict[str, float]] = {}
_ROWS = ("b17_opt", "b18_1_opt", "s35932")


@pytest.fixture(scope="module")
def instances():
    out = {}
    for name in _ROWS:
        circuit = table1_circuit(name, scale=bench_scale())
        graph = RetimingGraph.from_circuit(circuit)
        obs = observability(circuit, n_frames=bench_frames(),
                            n_patterns=bench_patterns()).obs
        counts = {net: int(round(v * bench_patterns()))
                  for net, v in obs.items()}
        init = initialize(graph, 0.0, circuit.library.hold_time)
        problem = Problem(graph=graph, phi=init.phi, setup=0.0,
                          hold=circuit.library.hold_time, rmin=init.rmin,
                          b=gains(graph, counts))
        out[name] = (problem, init.r0)
    return out


@pytest.mark.parametrize("row", _ROWS)
def test_minobs_time(benchmark, instances, row):
    problem, r0 = instances[row]
    result = once(benchmark, minobs_retiming, problem, r0)
    _TIMES.setdefault(row, {})["ref"] = result.runtime


@pytest.mark.parametrize("row", _ROWS)
def test_minobswin_time(benchmark, instances, row):
    problem, r0 = instances[row]
    result = once(benchmark, minobswin_retiming, problem, r0)
    _TIMES.setdefault(row, {})["new"] = result.runtime


def test_zz_ratio_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    pairs = [(t["new"], t["ref"]) for t in _TIMES.values()
             if "new" in t and "ref" in t]
    if not pairs:
        pytest.skip("no timing pairs collected")
    total_new = sum(p[0] for p in pairs)
    total_ref = sum(p[1] for p in pairs)
    ratio = total_new / max(total_ref, 1e-9)
    print(f"\nMinObsWin / MinObs runtime ratio: {ratio:.2f}x "
          f"(paper: ~2.5x)")
    # Shape: the P2' machinery costs extra but stays a small constant
    # factor, not an asymptotic blow-up.
    assert ratio < 10.0

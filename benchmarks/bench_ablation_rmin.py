"""Ablation: sweeping the ELW constraint knob R_min.

Problem 1 interpolates between unconstrained MinObs (R_min at the
minimal gate delay: P2' vacuous, the paper's degenerate s15850.1 case)
and a frozen circuit (R_min so large nothing may move).  This ablation
sweeps R_min on one suite circuit and reports the achieved register
observability and SER at each point -- the trade-off curve behind the
paper's choice of R_min (Sec. V).
"""

import numpy as np
import pytest

from repro.circuits.suites import table1_circuit
from repro.core.constraints import Problem, gains, register_observability
from repro.core.initialization import initialize
from repro.core.minobswin import minobswin_retiming
from repro.graph.retiming_graph import RetimingGraph
from repro.pipeline import rebuild_retimed
from repro.ser.analysis import analyze_ser
from repro.sim.odc import observability

from .conftest import bench_frames, bench_patterns, bench_scale, once

_CURVE: list[tuple[float, int, float]] = []


@pytest.fixture(scope="module")
def instance():
    circuit = table1_circuit("b21_1_opt", scale=bench_scale())
    graph = RetimingGraph.from_circuit(circuit)
    obs = observability(circuit, n_frames=bench_frames(),
                        n_patterns=bench_patterns()).obs
    counts = {net: int(round(v * bench_patterns()))
              for net, v in obs.items()}
    hold = circuit.library.hold_time
    init = initialize(graph, 0.0, hold)
    b = gains(graph, counts)
    ser0 = analyze_ser(circuit, init.phi, 0.0, hold, obs=obs).total
    return circuit, graph, obs, counts, init, b, hold, ser0


@pytest.mark.parametrize("rmin_scale", [0.0, 0.5, 1.0, 2.0, 4.0])
def test_rmin_sweep(benchmark, instance, rmin_scale):
    circuit, graph, obs, counts, init, b, hold, ser0 = instance
    rmin = init.rmin * rmin_scale
    problem = Problem(graph=graph, phi=init.phi, setup=0.0, hold=hold,
                      rmin=rmin, b=b)
    # rmin above the initial minimum makes the start infeasible; clamp
    # to the feasible boundary for the sweep's upper points.
    from repro.core.constraints import check_constraints

    while check_constraints(problem, init.r0) is not None and rmin > 0:
        rmin *= 0.9
        problem = Problem(graph=graph, phi=init.phi, setup=0.0,
                          hold=hold, rmin=rmin, b=b)

    result = once(benchmark, minobswin_retiming, problem, init.r0)
    retimed = rebuild_retimed(circuit, graph, result.r)
    ser = analyze_ser(retimed, init.phi, 0.0, hold, obs=obs).total
    _CURVE.append((rmin, result.objective,
                   100.0 * (ser / ser0 - 1.0)))


def test_zz_rmin_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_CURVE) < 3:
        pytest.skip("sweep incomplete")
    print("\n  R_min   objective   dSER vs original")
    monotone = []
    for rmin, objective, dser in sorted(_CURVE):
        print(f"  {rmin:5.2f}  {objective:10d}   {dser:+8.1f}%")
        monotone.append(objective)
    # Tightening the ELW constraint can only shrink the feasible set:
    # the observability objective is monotonically non-increasing.
    assert all(a >= b for a, b in zip(monotone, monotone[1:])), \
        "objective must not improve as R_min tightens"

"""Table I reproduction: the paper's main experiment.

One benchmark per Table I row (21 ISCAS89/ITC99-mimicking synthetic
circuits; see DESIGN.md for the substitution): runs the full Sec. VI flow
-- observability simulation, Sec. V initialization, Efficient MinObs and
MinObsWin, netlist rebuild, eq. (4) SER analysis -- and collects the
paper's columns.  The final summary test prints the full table plus the
averages the paper reports and asserts the qualitative shape:

* both algorithms reduce SER on average (paper: -26.7% / -32.7%);
* both reduce register count on average (paper: -43% / -38%);
* MinObsWin never does catastrophically worse than MinObs (the paper's
  worst ratio is 67%);
* every retimed circuit meets its clock-period constraint.

Knobs: REPRO_BENCH_SCALE, REPRO_BENCH_FRAMES, REPRO_BENCH_PATTERNS,
REPRO_BENCH_ROWS (see conftest).
"""

import numpy as np
import pytest

from repro.circuits.suites import table1_circuit
from repro.pipeline import optimize_circuit, table1_row
from repro.ser.report import format_comparison
from repro._util import percent

from .conftest import bench_frames, bench_patterns, bench_rows, \
    bench_scale, once

_RESULTS: dict[str, dict] = {}


@pytest.mark.parametrize("row_name", bench_rows())
def test_table1_row(benchmark, row_name):
    circuit = table1_circuit(row_name, scale=bench_scale())

    def run():
        return optimize_circuit(circuit, n_frames=bench_frames(),
                                n_patterns=bench_patterns())

    result = once(benchmark, run)
    _RESULTS[row_name] = table1_row(result)

    # Per-row sanity: the solvers never regress their own objective, and
    # the retimed netlists are well-formed.
    from repro.graph.timing import achieved_period
    from repro.graph.retiming_graph import RetimingGraph

    for outcome in result.outcomes.values():
        graph = RetimingGraph.from_circuit(outcome.circuit)
        assert achieved_period(graph, graph.zero_retiming()) <= \
            result.phi + 1e-6


def test_zz_table1_summary(benchmark):
    """Print the reproduced Table I and check the paper's shape."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [_RESULTS[name] for name in bench_rows() if name in _RESULTS]
    if len(rows) < 3:
        pytest.skip("not enough rows collected (filtered run)")
    table = format_comparison(rows)
    print("\n" + table)

    d_ref = np.array([percent(r["ref_ser"], r["ser"]) for r in rows])
    d_new = np.array([percent(r["new_ser"], r["ser"]) for r in rows])
    dff_ref = np.array([percent(r["ref_ff"], r["FF"]) for r in rows])
    dff_new = np.array([percent(r["new_ff"], r["FF"]) for r in rows])
    ratio = np.array([100.0 * r["ref_ser"] / r["new_ser"] for r in rows])
    t_ref = np.array([r["ref_time"] for r in rows])
    t_new = np.array([r["new_time"] for r in rows])

    averages = (
        f"AVG (paper in parens): "
        f"dSER_ref {d_ref.mean():+.1f}% (-26.7%)  "
        f"dSER_new {d_new.mean():+.1f}% (-32.7%)  "
        f"ratio {ratio.mean():.0f}% (115%)  "
        f"dFF_ref {dff_ref.mean():+.1f}% (-43.0%)  "
        f"dFF_new {dff_new.mean():+.1f}% (-38.0%)  "
        f"t_new/t_ref {t_new.sum() / max(t_ref.sum(), 1e-9):.2f}x "
        f"(2.5x)")
    print("\n" + averages)
    # Persist the reproduced table next to the harness: pytest captures
    # stdout, so a plain `pytest benchmarks/ --benchmark-only` run still
    # leaves the full table on disk for the record.
    import pathlib

    report = pathlib.Path(__file__).with_name("table1_report.txt")
    report.write_text(table + "\n\n" + averages + "\n")

    # Shape assertions (loose: the substrate is a scaled synthetic
    # suite; see EXPERIMENTS.md for the full discussion).
    assert d_ref.mean() < -5.0, "MinObs must reduce SER on average"
    assert d_new.mean() < -5.0, "MinObsWin must reduce SER on average"
    assert dff_new.mean() < 0.0, "register-count by-product reduction"
    assert ratio.min() > 60.0, \
        "MinObsWin never catastrophically below MinObs (paper min 67%)"
    assert ratio.max() >= 100.0, \
        "MinObsWin wins or ties somewhere (paper max 194%)"

"""Ablation: signature width K (simulation patterns).

The observability estimates (and through them the gains b(v)) are Monte
Carlo quantities over K patterns.  This ablation measures estimator
spread across seeds as K grows and its effect on the final SER of the
optimized circuit -- justifying the default K = 256.
"""

import numpy as np
import pytest

from repro.circuits.suites import table1_circuit
from repro.pipeline import optimize_circuit
from repro.sim.odc import observability

from .conftest import bench_frames, bench_scale, once

_SPREAD: dict[int, float] = {}
_SER: dict[int, float] = {}


@pytest.fixture(scope="module")
def circuit():
    return table1_circuit("b20_1_opt", scale=bench_scale())


@pytest.mark.parametrize("patterns", [64, 128, 256, 512])
def test_patterns_sweep(benchmark, circuit, patterns):
    def run():
        runs = [observability(circuit, n_frames=bench_frames(),
                              n_patterns=patterns, seed=s).obs
                for s in (0, 1, 2)]
        spread = float(np.mean([
            np.std([run[g] for run in runs])
            for g in list(circuit.gates)[:200]]))
        result = optimize_circuit(circuit, algorithms=("minobswin",),
                                  n_frames=bench_frames(),
                                  n_patterns=patterns)
        return spread, result.outcomes["minobswin"].ser.total

    spread, ser = once(benchmark, run)
    _SPREAD[patterns] = spread
    _SER[patterns] = ser


def test_zz_patterns_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_SPREAD) < 3:
        pytest.skip("sweep incomplete")
    print("\n    K   obs seed-spread    optimized SER")
    for k in sorted(_SPREAD):
        print(f"  {k:4d}   {_SPREAD[k]:10.4f}       {_SER[k]:.4e}")
    ks = sorted(_SPREAD)
    # Monte-Carlo convergence: spread shrinks roughly like 1/sqrt(K).
    assert _SPREAD[ks[-1]] < _SPREAD[ks[0]]
    # The optimized SER stabilizes: doubling K from 256 changes the
    # result by less than 20%.
    assert abs(_SER[512] - _SER[256]) / _SER[256] < 0.2

"""Model validation: injected faults vs. the analytic eq. (4) model.

The SER engine multiplies three independently-estimated factors
(obs x err x |ELW|/phi).  This benchmark validates the separable model
against the timing-accurate fault injector of :mod:`repro.sim.faults`:
for sampled gates, the Monte-Carlo latching probability -- the measure of
birth times whose *sensitized* windows latch, averaged over patterns --
must (a) never exceed the structural |ELW|/phi bound and (b) correlate
strongly with the analytic obs * |ELW| / phi term across gates.
"""

import numpy as np
import pytest

from repro.circuits import random_sequential_circuit
from repro.core.elw import circuit_elws
from repro.sim.bitvec import random_patterns
from repro.sim.faults import sensitized_latching_windows
from repro.sim.logicsim import simulate_comb
from repro.sim.odc import observability

from .conftest import once

PHI, SETUP, HOLD = 60.0, 0.0, 2.0


def test_injection_vs_analytic_model(benchmark):
    circuit = random_sequential_circuit(
        "validate", n_gates=120, n_dffs=36, n_inputs=8, n_outputs=8,
        seed=23)
    n = 128
    rng = np.random.default_rng(5)
    values = {net: random_patterns(n, rng)
              for net in list(circuit.inputs) + list(circuit.dffs)}
    frame = simulate_comb(circuit, values, n)
    elws = circuit_elws(circuit, PHI, SETUP, HOLD)
    obs = observability(circuit, n_frames=1, n_patterns=n, seed=5).obs

    gates = [g for g in circuit.topo_gates() if not elws[g].is_empty][:40]

    def measure():
        analytic, injected = [], []
        for gate in gates:
            windows = sensitized_latching_windows(
                circuit, frame, gate, n, PHI, SETUP, HOLD)
            mc = float(np.mean([
                sum(r - l for l, r in per_pattern) / PHI
                for per_pattern in windows]))
            injected.append(mc)
            analytic.append(obs[gate] * elws[gate].measure / PHI)
        return np.array(analytic), np.array(injected)

    analytic, injected = once(benchmark, measure)

    # (a) Structural bound: sensitized windows live inside the ELW.
    structural = np.array([elws[g].measure / PHI for g in gates])
    assert np.all(injected <= structural + 1e-9)

    # (b) The separable analytic model tracks injection: strong rank
    # correlation across gates (it is an approximation -- obs and window
    # position are correlated through the logic -- so we require
    # correlation, not equality).
    from scipy.stats import spearmanr

    rho, _ = spearmanr(analytic, injected)
    print(f"\n[validation] Spearman rho(analytic, injected) = {rho:.3f} "
          f"over {len(gates)} gates "
          f"(mean analytic {analytic.mean():.3f}, "
          f"mean injected {injected.mean():.3f})")
    assert rho > 0.6

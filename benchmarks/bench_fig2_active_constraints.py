"""Figure 2 reproduction: the three active-constraint types.

Builds the three minimal scenarios of Fig. 2 -- a P0 violation (register
deficit), a P1' violation (critical longest path created by a move), and
a P2' violation (critical shortest path terminated by a registered edge)
-- and benchmarks the constraint checker that diagnoses them, asserting
each diagnosis produces exactly the active constraint the paper
prescribes.
"""

import numpy as np
import pytest

from repro.core.constraints import Problem, check_constraints
from repro.graph.retiming_graph import RetimingGraph

from .conftest import once


def chain(delays, weights, phi, rmin=0.0):
    g = RetimingGraph()
    names = [f"g{i}" for i in range(len(delays))]
    for name, d in zip(names, delays):
        g.add_vertex(name, d)
    g.add_edge("__host__", names[0], weights[0], src_net="pi")
    for i in range(len(names) - 1):
        g.add_edge(names[i], names[i + 1], weights[i + 1])
    g.add_edge(names[-1], "__host__", weights[-1], tag=("po", 0))
    problem = Problem(graph=g, phi=phi, setup=0.0, hold=2.0, rmin=rmin,
                      b=np.zeros(g.n_vertices, dtype=np.int64))
    return g, problem


def test_fig2a_p0_constraint(benchmark):
    """Fig. 2(a): w_r(u, v) = 0 and v moves -> (v, u) active constraint."""
    g, problem = chain([2, 2, 2], [0, 1, 0, 0], phi=100)
    move = np.zeros(g.n_vertices, dtype=np.int64)
    move[g.index["g2"]] = 1  # g2 moves; edge g1->g2 had no registers
    r = g.zero_retiming() - move
    violation = once(benchmark, check_constraints, problem, r, move)
    assert violation.kind == "P0"
    assert (violation.p, violation.q) == (g.index["g2"], g.index["g1"])
    assert violation.deficit == 1


def test_fig2b_p1_constraint(benchmark):
    """Fig. 2(b): z's move creates a critical longest path u ~> z; the
    active constraint is (lt(u), u)."""
    g, problem = chain([3, 3, 3], [0, 0, 1, 1], phi=7)
    move = np.zeros(g.n_vertices, dtype=np.int64)
    move[g.index["g2"]] = 1  # register moves off g1->g2 to g2->host
    r = g.zero_retiming() - move
    violation = once(benchmark, check_constraints, problem, r, move)
    assert violation.kind == "P1"
    assert violation.p == g.index["g2"]   # lt(u) = z, the mover
    assert violation.q == g.index["g0"]   # u, head of the long path
    assert violation.deficit == 1


def test_fig2c_p2_constraint(benchmark):
    """Fig. 2(c): a move registers (u, v) and the critical shortest path
    v ~> z ends at registered edge (z, y); the constraint drags y by
    w_r(z, y)."""
    g, problem = chain([4, 1, 1, 4], [0, 1, 0, 2, 0], phi=100, rmin=5.0)
    move = np.zeros(g.n_vertices, dtype=np.int64)
    move[g.index["g1"]] = 1  # moves the register to edge g1->g2
    r = g.zero_retiming() - move
    violation = once(benchmark, check_constraints, problem, r, move)
    assert violation.kind == "P2"
    assert violation.p == g.index["g1"]   # the mover
    assert violation.q == g.index["g3"]   # y, beyond the terminal z=g2
    assert violation.deficit == 2         # all registers off (z, y)

"""Extra baseline: SER-blind min-area retiming vs the SER-aware solvers.

The paper's comparison is against MinObs [17]; a natural second baseline
is classical min-area retiming (what a conventional flow would run),
which optimizes register count with no notion of observability or ELWs.
This benchmark shows where it lands on the same circuits: typically a
larger register reduction but a weaker (sometimes negative) SER
improvement -- quantifying how much of the paper's gain comes from being
SER-aware at all, versus from moving registers around.
"""

import numpy as np
import pytest

from repro.circuits.suites import table1_circuit
from repro.core.constraints import Problem, gains
from repro.core.initialization import initialize
from repro.core.minobswin import minobswin_retiming
from repro.graph.retiming_graph import RetimingGraph
from repro.pipeline import rebuild_retimed
from repro.retime.minarea import area_gains
from repro.ser.analysis import analyze_ser
from repro.sim.odc import observability

from .conftest import bench_frames, bench_patterns, bench_scale, once

_ROWS = ("s35932", "b15_opt", "b21_opt")
_RESULTS: list[tuple[str, float, float, int, int]] = []


@pytest.mark.parametrize("row", _ROWS)
def test_minarea_vs_minobswin(benchmark, row):
    circuit = table1_circuit(row, scale=bench_scale())
    graph = RetimingGraph.from_circuit(circuit)
    hold = circuit.library.hold_time
    obs = observability(circuit, n_frames=bench_frames(),
                        n_patterns=bench_patterns()).obs
    counts = {net: int(round(v * bench_patterns()))
              for net, v in obs.items()}
    init = initialize(graph, 0.0, hold)
    ser0 = analyze_ser(circuit, init.phi, 0.0, hold, obs=obs).total

    def run():
        obs_problem = Problem(graph=graph, phi=init.phi, setup=0.0,
                              hold=hold, rmin=init.rmin,
                              b=gains(graph, counts))
        area_problem = Problem(graph=graph, phi=init.phi, setup=0.0,
                               hold=hold, rmin=0.0, b=area_gains(graph))
        ser_aware = minobswin_retiming(obs_problem, init.r0)
        ser_blind = minobswin_retiming(area_problem, init.r0,
                                       skip_p2=True)
        return ser_aware, ser_blind

    ser_aware, ser_blind = once(benchmark, run)
    aware_ser = analyze_ser(rebuild_retimed(circuit, graph, ser_aware.r),
                            init.phi, 0.0, hold, obs=obs).total
    blind_ser = analyze_ser(rebuild_retimed(circuit, graph, ser_blind.r),
                            init.phi, 0.0, hold, obs=obs).total
    _RESULTS.append((
        row,
        100.0 * (aware_ser / ser0 - 1.0),
        100.0 * (blind_ser / ser0 - 1.0),
        graph.register_count(ser_aware.r),
        graph.register_count(ser_blind.r),
    ))


def test_zz_minarea_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_RESULTS) < 2:
        pytest.skip("sweep incomplete")
    print("\n  row        dSER(MinObsWin)  dSER(min-area)  "
          "FF(aware)  FF(blind)")
    aware_better = 0
    for row, aware, blind, ff_a, ff_b in _RESULTS:
        print(f"  {row:10s}    {aware:+10.1f}%    {blind:+10.1f}%  "
              f"{ff_a:8d}  {ff_b:8d}")
        if aware <= blind + 1e-9:
            aware_better += 1
    # The SER-aware objective must beat (or tie) the SER-blind one on
    # SER for the majority of circuits -- the paper's raison d'etre.
    assert aware_better >= (len(_RESULTS) + 1) // 2

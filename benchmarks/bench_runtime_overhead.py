"""Overhead of the resilient runtime over the bare pipeline.

The executor (ladders, per-attempt deadlines, guard plumbing) wraps
every stage of the Table I flow; this benchmark certifies the wrapper
itself is close to free by timing the same suite twice:

* bare: a direct ``optimize_circuit`` loop (the pre-runtime flow);
* resilient: ``run_suite`` with guards disabled (guards do real extra
  verification work and are reported separately, not as overhead).

Target: < 2 % wall-clock overhead on the default suite settings.

The telemetry plane rides on the same gate: with no tracer installed
every instrumentation point is a single ``None`` test plus the
always-on metrics-registry counters, so the "resilient" measurement
*is* the tracing-disabled measurement and the < 2 % target covers it.
A traced run is timed separately (it writes a JSONL span file and is
expected to cost more) and reported, not gated.
"""

from __future__ import annotations

import time

import pytest

from repro.circuits.suites import table1_circuit
from repro.pipeline import optimize_circuit, table1_row
from repro.runtime.suite import SuiteConfig, run_suite

from .conftest import bench_frames, bench_patterns, bench_scale, once

_ROWS = ("s13207", "s15850.1", "s38417", "b14_opt", "b20_opt")
_TIMES: dict[str, float] = {}


def _bare_suite() -> list[dict]:
    rows = []
    for name in _ROWS:
        circuit = table1_circuit(name, scale=bench_scale(), seed=0)
        result = optimize_circuit(circuit, n_frames=bench_frames(),
                                  n_patterns=bench_patterns(), seed=0)
        rows.append(table1_row(result))
    return rows


def _resilient_suite(guard: bool, trace_path: str | None = None,
                     ) -> list[dict]:
    config = SuiteConfig(circuits=_ROWS, scale=bench_scale(), seed=0,
                         n_frames=bench_frames(),
                         n_patterns=bench_patterns(), guard=guard,
                         trace_path=trace_path)
    return run_suite(config).rows


def test_bare_pipeline(benchmark):
    t0 = time.perf_counter()
    rows = once(benchmark, _bare_suite)
    _TIMES["bare"] = time.perf_counter() - t0
    assert len(rows) == len(_ROWS)


def test_resilient_no_guard(benchmark):
    t0 = time.perf_counter()
    rows = once(benchmark, _resilient_suite, False)
    _TIMES["resilient"] = time.perf_counter() - t0
    assert all(row["status"] == "ok" for row in rows)


def test_resilient_with_guard(benchmark):
    t0 = time.perf_counter()
    rows = once(benchmark, _resilient_suite, True)
    _TIMES["guarded"] = time.perf_counter() - t0
    assert all(row["status"] == "ok" for row in rows)


def test_resilient_traced(benchmark, tmp_path):
    trace = str(tmp_path / "bench.jsonl")
    t0 = time.perf_counter()
    rows = once(benchmark, _resilient_suite, False, trace)
    _TIMES["traced"] = time.perf_counter() - t0
    assert all(row["status"] == "ok" for row in rows)


def test_resilient_traced_and_profiled(benchmark, tmp_path):
    from repro.telemetry.profiler import StackProfiler

    def run():
        with StackProfiler(interval=0.01):
            return _resilient_suite(False, str(tmp_path / "prof.jsonl"))

    t0 = time.perf_counter()
    rows = once(benchmark, run)
    _TIMES["profiled"] = time.perf_counter() - t0
    assert all(row["status"] == "ok" for row in rows)


def test_overhead_report(capsys):
    if "bare" not in _TIMES or "resilient" not in _TIMES:
        pytest.skip("timing tests did not run")
    bare = _TIMES["bare"]
    resilient = _TIMES["resilient"]
    overhead = 100.0 * (resilient - bare) / bare
    guarded = _TIMES.get("guarded")
    traced = _TIMES.get("traced")
    with capsys.disabled():
        print(f"\nruntime overhead: bare={bare:.2f}s "
              f"resilient(no guard)={resilient:.2f}s "
              f"({overhead:+.2f}%)")
        if guarded is not None:
            print(f"guard cost: {100.0 * (guarded - bare) / bare:+.2f}% "
                  f"({guarded:.2f}s total)")
        if traced is not None:
            print(f"span tracing cost: "
                  f"{100.0 * (traced - resilient) / resilient:+.2f}% "
                  f"over resilient ({traced:.2f}s total)")
        profiled = _TIMES.get("profiled")
        if profiled is not None:
            print(f"tracing + 100 Hz profiler cost: "
                  f"{100.0 * (profiled - resilient) / resilient:+.2f}% "
                  f"over resilient ({profiled:.2f}s total)")
    # the executor wrapper (which includes the tracing-off telemetry
    # instrumentation: one None test per span point, always-on metric
    # counters) must be close to free; allow slack well above the 2%
    # target so scheduler noise cannot flake the suite
    assert overhead < 10.0

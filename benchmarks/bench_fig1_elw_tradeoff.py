"""Figure 1 reproduction: retiming's impact on ELWs and SER.

Regenerates the paper's Fig. 1 observation as measurable quantities: the
MinObs register merge reduces register observability but grows every
upstream ELW by d(NOT) = 1 and worsens total SER, while MinObsWin's P2'
rejects the move.  The benchmark times the two solvers on the Fig. 1
circuit and asserts the qualitative shape.
"""

import numpy as np
import pytest

from repro.circuits import figure1_circuit
from repro.core.constraints import Problem, gains, register_observability
from repro.core.elw import circuit_elws
from repro.core.initialization import min_register_path
from repro.core.minobs import minobs_retiming
from repro.core.minobswin import minobswin_retiming
from repro.graph.retiming_graph import RetimingGraph
from repro.pipeline import rebuild_retimed
from repro.ser.analysis import analyze_ser
from repro.sim.odc import observability

from .conftest import once

PHI, SETUP, HOLD = 20.0, 0.0, 2.0


@pytest.fixture(scope="module")
def fig1_instance():
    circuit = figure1_circuit(depth=4)
    graph = RetimingGraph.from_circuit(circuit)
    obs = observability(circuit, n_frames=6, n_patterns=256, seed=3).obs
    counts = {net: int(round(v * 256)) for net, v in obs.items()}
    rmin = min_register_path(graph, graph.zero_retiming(), PHI, SETUP,
                             HOLD)
    problem = Problem(graph=graph, phi=PHI, setup=SETUP, hold=HOLD,
                      rmin=rmin, b=gains(graph, counts))
    return circuit, graph, obs, problem


def test_fig1_minobs_merges_and_worsens_ser(benchmark, fig1_instance):
    circuit, graph, obs, problem = fig1_instance
    r0 = graph.zero_retiming()
    result = once(benchmark, minobs_retiming, problem, r0)

    assert result.r[graph.index["F"]] == -1, "MinObs must merge through F"
    assert register_observability(graph, result.r, obs) < \
        register_observability(graph, r0, obs)

    before = circuit_elws(circuit, PHI, SETUP, HOLD)
    retimed = rebuild_retimed(circuit, graph, result.r)
    after = circuit_elws(retimed, PHI, SETUP, HOLD)
    for side in ("A", "B"):
        grown = after[side].measure - before[side].measure
        assert grown == pytest.approx(1.0), \
            f"ELW({side}) must grow by exactly 1 (paper Fig. 1)"

    ser0 = analyze_ser(circuit, PHI, SETUP, HOLD, obs=obs).total
    ser1 = analyze_ser(retimed, PHI, SETUP, HOLD, obs=obs).total
    print(f"\n[fig1] SER original {ser0:.4e} -> MinObs {ser1:.4e} "
          f"({100 * (ser1 / ser0 - 1):+.1f}%)")
    assert ser1 > ser0, "the Fig. 1 move must worsen total SER"


def test_fig1_minobswin_refuses(benchmark, fig1_instance):
    circuit, graph, obs, problem = fig1_instance
    r0 = graph.zero_retiming()
    result = once(benchmark, minobswin_retiming, problem, r0)
    assert np.all(result.r == 0), \
        "P2' must reject the ELW-growing merge"
    retimed = rebuild_retimed(circuit, graph, result.r)
    ser0 = analyze_ser(circuit, PHI, SETUP, HOLD, obs=obs).total
    ser1 = analyze_ser(retimed, PHI, SETUP, HOLD, obs=obs).total
    assert ser1 == pytest.approx(ser0)
    print(f"\n[fig1] MinObsWin keeps SER at {ser1:.4e}")

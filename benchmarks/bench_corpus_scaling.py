"""Corpus generation scaling: wall-clock and peak RSS per family.

Each scalable family is generated and emitted at roughly 10^3, 10^4 and
10^5 gates in a fresh child interpreter, so peak RSS is attributable to
that single build (``ru_maxrss`` is process-monotonic and useless for
in-process sequencing).  Reported per point:

* ``build_s`` / ``emit_s`` -- generator and ``.bench`` writer seconds;
* ``peak_rss_mb`` -- the child's peak resident set;
* ``gates`` -- actual size (asserted within 25% of the target).

Every registered family is scalable now that the ``random`` family's
register-eligibility pool is incremental (the old O(gates x dffs)
per-gate rescan priced it out of 10^5; ROADMAP item 1).

Run with ``pytest benchmarks/bench_corpus_scaling.py --benchmark-only``.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys

import pytest

from .conftest import once

TARGETS = (1_000, 10_000, 100_000)


def _shape(family: str, n: int) -> dict:
    """Generator params putting ``family`` near ``n`` gates."""
    if family == "pipeline":
        width = 100
        return {"stages": max(2, n // width), "width": width}
    if family == "fsm_datapath":
        width = 100
        return {"state_bits": 6, "stages": max(1, n // width),
                "width": width}
    if family == "tree":
        return {"leaves": n, "reg_every": 2}
    if family == "mesh":
        side = max(2, round(math.sqrt(n)))
        return {"rows": side, "cols": side}
    if family == "cslow":
        side = max(2, round(math.sqrt(n)))
        return {"c": 2, "base_family": "mesh",
                "base_params": {"rows": side, "cols": side}}
    if family == "random":
        return {"n_gates": n, "n_dffs": max(8, n // 12)}
    raise ValueError(family)


_CHILD = r"""
import json, resource, sys, time
from repro.corpus.families import CircuitSpec, build_circuit
from repro.netlist.bench_format import dumps_bench

spec = CircuitSpec(name="bench", family=sys.argv[1],
                   params=json.loads(sys.argv[2]), seed=0)
t0 = time.perf_counter()
circuit = build_circuit(spec)
t1 = time.perf_counter()
text = dumps_bench(circuit)
t2 = time.perf_counter()
rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({
    "gates": circuit.n_gates, "dffs": circuit.n_dffs,
    "build_s": t1 - t0, "emit_s": t2 - t1,
    "emitted_bytes": len(text), "peak_rss_mb": rss_kb / 1024.0}))
"""


def _measure(family: str, n: int) -> dict:
    src_root = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, family, json.dumps(_shape(family, n))],
        capture_output=True, text=True, env=env)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def _scalable_families() -> list[str]:
    from repro.corpus.families import FAMILIES

    return [name for name, family in FAMILIES.items() if family.scalable]


@pytest.mark.parametrize("n", TARGETS)
@pytest.mark.parametrize("family", _scalable_families())
def test_generation_scales(benchmark, family, n):
    point = once(benchmark, _measure, family, n)
    benchmark.extra_info.update(point)
    print(f"\n{family:13s} target={n:>7d} gates={point['gates']:>7d} "
          f"dffs={point['dffs']:>7d} build={point['build_s']:7.3f}s "
          f"emit={point['emit_s']:7.3f}s rss={point['peak_rss_mb']:7.1f}MB")
    assert abs(point["gates"] - n) <= 0.25 * n
    # generation must stay interactive even at the top of the range
    assert point["build_s"] + point["emit_s"] < 300.0

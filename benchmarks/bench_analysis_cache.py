"""Analysis-cache speedup: warm vs cold ``table1`` over the golden suite.

Both runs go through the CLI path users actually take
(``repro-ser table1 ... --cache-dir DIR``) as fresh child interpreters,
so the warm run cannot profit from any in-process memo -- every hit is
a disk-tier round trip, exactly like a second invocation on a developer
machine.

Two claims:

* determinism -- the cold, warm and cache-off manifests share one
  ``result_checksum``, asserted *unconditionally*;
* speedup -- the warm run completes the suite at least 3x faster than
  the cold one (the acceptance bar of the caching change).  Suite time
  is the sum of the per-circuit ``elapsed`` fields the manifest records
  (the suite's own wall clock); child-interpreter startup -- numpy and
  scipy imports, identical cold and warm -- would otherwise drown the
  measurement at this problem size.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

from repro.runtime.manifest import RunManifest

#: The golden three-row suite (tests/golden/golden_config.py) at its
#: pinned knobs -- small enough for CI, large enough that analysis time
#: dwarfs noise.
_ROWS = ("s13207", "s15850.1", "b14_1_opt")
_KNOBS = ("--scale", "0.004", "--frames", "3", "--patterns", "64",
          "--seed", "0")

_RESULTS: dict[str, tuple[float, float, str]] = {}


def _src_root() -> str:
    return os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")


def _cli_table1(workdir: str, tag: str,
                cache_dir: str | None) -> tuple[float, float, str]:
    """One child-interpreter run: (wall s, suite s, digest)."""
    manifest_path = os.path.join(workdir, f"{tag}.json")
    argv = [sys.executable, "-m", "repro.cli", "table1", *_ROWS,
            *_KNOBS, "--resume", manifest_path]
    if cache_dir is None:
        argv.append("--no-cache")
    else:
        argv.extend(["--cache-dir", cache_dir])
    env = dict(os.environ)
    env["PYTHONPATH"] = _src_root() + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env.pop("REPRO_FAULT_PLAN", None)
    t0 = time.perf_counter()
    proc = subprocess.run(argv, capture_output=True, text=True, env=env)
    wall = time.perf_counter() - t0
    assert proc.returncode == 0, proc.stderr
    manifest = RunManifest.load(manifest_path)
    suite = sum(rec["elapsed"]
                for rec in manifest.payload()["completed"].values())
    return wall, suite, manifest.result_digest()


def _run_all(tmp_path) -> dict[str, tuple[float, float, str]]:
    if not _RESULTS:
        cache_dir = os.path.join(tmp_path, "cache")
        _RESULTS["off"] = _cli_table1(str(tmp_path), "off", None)
        _RESULTS["cold"] = _cli_table1(str(tmp_path), "cold", cache_dir)
        assert os.listdir(cache_dir), "cold run left no cache entries"
        _RESULTS["warm"] = _cli_table1(str(tmp_path), "warm", cache_dir)
    return _RESULTS


def test_checksums_identical_across_cache_states(tmp_path):
    results = _run_all(tmp_path)
    digests = {tag: digest for tag, (_, _, digest) in results.items()}
    assert digests["cold"] == digests["off"], \
        "a cold cached run changed the result"
    assert digests["warm"] == digests["off"], \
        "a warm cached run changed the result"


def test_warm_is_at_least_3x_faster_than_cold(tmp_path):
    results = _run_all(tmp_path)
    cold_wall, cold, _ = results["cold"]
    warm_wall, warm, _ = results["warm"]
    ratio = cold / warm
    print(f"\ncold {cold:.2f}s (wall {cold_wall:.2f}s)  "
          f"warm {warm:.2f}s (wall {warm_wall:.2f}s)  "
          f"suite speedup {ratio:.1f}x")
    assert ratio >= 3.0, \
        f"warm table1 only {ratio:.2f}x faster than cold (need >= 3x)"

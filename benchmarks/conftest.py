"""Shared configuration for the benchmark harness.

Environment knobs (all optional):

``REPRO_BENCH_SCALE``
    Scale factor for the Table I suite (default: the suite default).
``REPRO_BENCH_FRAMES`` / ``REPRO_BENCH_PATTERNS``
    Observability simulation depth/width (defaults 8 / 128 -- the paper's
    15 / larger K change magnitudes by little but cost linearly).
``REPRO_BENCH_ROWS``
    Comma-separated Table I row names to restrict the main benchmark.
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> float:
    from repro.circuits.suites import DEFAULT_SCALE

    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


def bench_frames() -> int:
    return int(os.environ.get("REPRO_BENCH_FRAMES", 8))


def bench_patterns() -> int:
    return int(os.environ.get("REPRO_BENCH_PATTERNS", 128))


def bench_rows() -> list[str]:
    from repro.circuits.suites import TABLE1_ROWS

    names = os.environ.get("REPRO_BENCH_ROWS")
    if names:
        return [n.strip() for n in names.split(",") if n.strip()]
    return [row.name for row in TABLE1_ROWS]


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The Table I experiments are minutes-scale; statistical repetition is
    neither needed nor affordable, matching how the paper reports single
    CPU times.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)

"""Figure 3 reproduction: positive-tree-to-positive-tree linking.

Scripts the paper's Fig. 3 against the weighted regular forest: x (with
positive gain) drags y with weight 1; later u (also positive) needs y
with weight 2, forcing a BreakTree weight update and a link between two
positive trees -- the case that motivates the weighted extension of
Sec. IV-C.  Also benchmarks the forest's closed-set selection and
BreakTree on a large random forest.
"""

import numpy as np
import pytest

from repro.core.regular_forest import RegularForest

from .conftest import once


def test_fig3_scenario(benchmark):
    # Vertices: 0=host, 1=u (gain 6), 2=x (gain 5), 3=y (gain -2).
    def scenario():
        forest = RegularForest(np.array([0, 6, 5, -2], dtype=np.int64))
        # Fig. 3(a): x is examined first, a P0 fix bundles y with x.
        assert forest.add_constraint(2, 3, 1)
        first = forest.positive_delta().copy()
        # Fig. 3(b): u's move causes a P2' violation requiring y to
        # absorb 2 registers -- y sits in a positive tree already.
        assert forest.add_constraint(1, 3, 2)
        second = forest.positive_delta().copy()
        return forest, first, second

    forest, first, second = once(benchmark, scenario)
    # After the weight update the old (x, y) constraint is gone
    # (BreakTree dropped it) and the new (u, y) constraint holds.
    assert (2, 3) not in forest.constraints()
    assert (1, 3) in forest.constraints()
    assert forest.weight[3] == 2
    # Both positive roots stay selectable; y moves by its new weight.
    assert first[2] == 1 and first[3] == 1
    assert second[1] == 1 and second[3] == 2 and second[2] == 1


def test_forest_scales_linearly(benchmark):
    """Closed-set selection over a 20k-vertex forest stays fast -- the
    linear-storage/linear-work property the paper inherits from [20]."""
    rng = np.random.default_rng(0)
    n = 20_000
    gains = rng.integers(-50, 51, size=n)
    gains[0] = 0
    forest = RegularForest(gains.astype(np.int64))
    order = rng.permutation(np.arange(1, n))
    for child, parent in zip(order[: n // 2], order[n // 2: 2 * (n // 2)]):
        if forest.root(int(child)) != forest.root(int(parent)):
            forest.add_constraint(int(parent), int(child), 1)

    delta = once(benchmark, forest.positive_delta)
    assert delta.any()
    # Spot-check closure on a sample of stored constraints.
    constraints = forest.constraints()[:500]
    chosen = set(np.nonzero(delta)[0].tolist())
    for p, q in constraints:
        if p in chosen:
            assert q in chosen or q == 0

"""Ablation: register density via c-slowing.

C-slowing multiplies every register by ``c`` (interleaving ``c``
independent streams).  It moves a design along the trade-off the paper
studies: more register targets (more raw register strikes) against more
latching opportunities once the registers are *spread* -- un-retimed
c-slowing merely stacks registers on the same nets, so the combinational
ELW term only improves after optimization.  This ablation sweeps ``c``
on one circuit and reports the eq. (4) decomposition and how much the
SER-aware retiming recovers at each register density.
"""

import numpy as np
import pytest

from repro.circuits import random_sequential_circuit
from repro.graph.retiming_graph import RetimingGraph
from repro.graph.timing import achieved_period
from repro.pipeline import optimize_circuit
from repro.retime.cslow import c_slow
from repro.ser.analysis import analyze_ser
from repro.sim.odc import observability

from .conftest import bench_frames, bench_patterns, once

_SWEEP: dict[int, tuple[float, float, float, int]] = {}


@pytest.fixture(scope="module")
def base_circuit():
    return random_sequential_circuit(
        "cslow_base", n_gates=160, n_dffs=30, n_inputs=8, n_outputs=8,
        seed=31)


@pytest.mark.parametrize("c", [1, 2, 3])
def test_cslow_sweep(benchmark, base_circuit, c):
    def run():
        slowed = c_slow(base_circuit, c)
        graph = RetimingGraph.from_circuit(slowed)
        phi = achieved_period(graph, graph.zero_retiming()) * 1.1
        obs = observability(slowed, n_frames=bench_frames(),
                            n_patterns=bench_patterns()).obs
        before = analyze_ser(slowed, phi, obs=obs)
        result = optimize_circuit(slowed, algorithms=("minobswin",),
                                  n_frames=bench_frames(),
                                  n_patterns=bench_patterns())
        after = result.outcomes["minobswin"].ser
        return before, after, slowed.n_dffs

    before, after, n_regs = once(benchmark, run)
    _SWEEP[c] = (before.comb, before.reg,
                 100.0 * (after.total / before.total - 1.0), n_regs)


def test_zz_cslow_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_SWEEP) < 3:
        pytest.skip("sweep incomplete")
    print("\n  c   registers   comb SER     reg SER     retiming dSER")
    for c in sorted(_SWEEP):
        comb, reg, dser, n_regs = _SWEEP[c]
        print(f"  {c}   {n_regs:9d}   {comb:.3e}   {reg:.3e}   "
              f"{dser:+10.1f}%")
    # More registers -> more raw register contribution (un-retimed
    # c-slowing stacks registers on the same nets, so the combinational
    # ELW term only moves once the optimizer spreads them).
    assert _SWEEP[3][1] > _SWEEP[1][1]
    # The SER-aware retiming keeps recovering a similar relative
    # reduction at every register density.
    for c, (_, _, dser, _) in _SWEEP.items():
        assert dser < -5.0, f"c={c} should still optimize"

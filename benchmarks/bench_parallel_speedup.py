"""Parallel suite speedup: ``table1 --workers 4`` vs ``--workers 1``.

Both configurations run as fresh child interpreters (the CLI path users
actually take), each writing its own manifest.  Two claims are checked:

* determinism -- the ``result_checksum`` of the parallel manifest equals
  the serial one, unconditionally;
* speedup -- with at least four CPUs, four workers finish the suite at
  least twice as fast as one (asserted only when the host has the
  cores: on smaller machines the timing is reported, not judged).

Knobs: ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_FRAMES`` /
``REPRO_BENCH_PATTERNS`` (see :mod:`benchmarks.conftest`).
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

import pytest

from repro.runtime.manifest import RunManifest

from .conftest import bench_frames, bench_patterns, bench_scale, once

#: Eight mid-size rows of comparable cost: enough jobs for four shards,
#: no single circuit dominating the longest shard.
_ROWS = ("s13207", "s15850.1", "b14_1_opt", "b14_opt", "b15_1_opt",
         "b15_opt", "b20_1_opt", "b21_1_opt")

_RESULTS: dict[int, tuple[float, str]] = {}


def _src_root() -> str:
    return os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")


def _cli_table1(workdir: str, workers: int) -> tuple[float, str]:
    """One child-interpreter suite run; returns (seconds, digest)."""
    manifest = os.path.join(workdir, f"workers{workers}.json")
    argv = [sys.executable, "-m", "repro.cli", "table1", *_ROWS,
            "--scale", repr(bench_scale()),
            "--frames", str(bench_frames()),
            "--patterns", str(bench_patterns()),
            "--seed", "0", "--resume", manifest]
    if workers > 1:
        argv.extend(["--workers", str(workers)])
    env = dict(os.environ)
    env["PYTHONPATH"] = _src_root() + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env.pop("REPRO_FAULT_PLAN", None)
    t0 = time.perf_counter()
    proc = subprocess.run(argv, capture_output=True, text=True, env=env)
    elapsed = time.perf_counter() - t0
    assert proc.returncode == 0, proc.stderr
    digest = RunManifest.load(manifest).result_digest()
    _RESULTS[workers] = (elapsed, digest)
    return elapsed, digest


def test_serial_baseline(benchmark, tmp_path):
    elapsed, _ = once(benchmark, _cli_table1, str(tmp_path), 1)
    assert elapsed > 0


def test_four_workers(benchmark, tmp_path):
    elapsed, _ = once(benchmark, _cli_table1, str(tmp_path), 4)
    assert elapsed > 0


def test_checksum_identical_across_worker_counts():
    if len(_RESULTS) < 2:
        pytest.skip("timing tests did not run")
    digests = {digest for _, digest in _RESULTS.values()}
    assert len(digests) == 1, (
        f"worker count changed the results: {_RESULTS}")


def test_speedup_report(capsys):
    if len(_RESULTS) < 2:
        pytest.skip("timing tests did not run")
    serial, _ = _RESULTS[1]
    parallel, _ = _RESULTS[4]
    speedup = serial / parallel
    with capsys.disabled():
        print(f"\n[parallel-speedup] serial {serial:.2f}s, "
              f"4 workers {parallel:.2f}s, speedup {speedup:.2f}x "
              f"on {os.cpu_count()} CPUs")
    if (os.cpu_count() or 1) < 4:
        pytest.skip("need >= 4 CPUs to judge the speedup target")
    assert speedup >= 2.0, (
        f"4 workers only {speedup:.2f}x faster than serial")

"""Cost of the service observability plane, with digest parity.

Runs the same batch of jobs through an in-process retiming service
twice -- once plain, once with the full observability plane on (span
tracing to JSONL, access logging, and the 100 Hz sampling profiler) --
and reports the wall-clock difference.  The hard gate is *correctness*,
not timing: every job's result digest must be byte-identical between
the two runs, proving observability is an execution knob that never
touches answers.  (The tracing-*disabled* overhead gate lives in
:mod:`benchmarks.bench_runtime_overhead`: with no tracer installed
every instrumentation point is a single ``None`` test, so the
resilient-suite measurement there covers the off path's < 2 % target.)

Timing numbers land in ``benchmarks/results/BENCH_observability.json``
when run as a script::

    PYTHONPATH=src python -m benchmarks.bench_observability

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_observability.py \\
        --benchmark-only -q
"""

from __future__ import annotations

import http.client
import json
import os
import platform
import threading
import time

TINY_BENCH = """\
INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(s1)
s1 = DFF(g2)
g1 = NAND(a, s1)
g2 = NOT(g1)
y = AND(g2, b)
"""

#: Jobs per measured run; distinct seeds so the batch is not one cached
#: analysis served N times.
N_JOBS = 6

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results",
                            "BENCH_observability.json")


def _request(endpoint, method, path, body=None):
    conn = http.client.HTTPConnection(endpoint["host"], endpoint["port"],
                                      timeout=30)
    try:
        data = None if body is None else json.dumps(body).encode("utf-8")
        conn.request(method, path, body=data)
        response = conn.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        return response.status, payload
    finally:
        conn.close()


def _run_batch(root, observe: bool) -> tuple[float, dict[str, str]]:
    """Serve, push the batch through, drain; returns (wall, digests)."""
    from repro.service.app import (RetimingService, ServiceConfig,
                                  read_endpoint)

    root = os.fspath(root)
    extra = {}
    if observe:
        extra = {"trace_path": os.path.join(root, "trace.jsonl"),
                 "access_log": os.path.join(root, "access.jsonl"),
                 "profile_path": os.path.join(root, "serve.prof")}
    service = RetimingService(ServiceConfig(
        root=root, pool=2, queue_limit=64, rate=1e6, burst=1e6,
        cache=False, monitor_interval=0.1, **extra))
    thread = threading.Thread(target=service.serve, daemon=True)
    thread.start()
    endpoint = read_endpoint(root, timeout=15.0)
    started = time.perf_counter()
    try:
        jobs = []
        for seed in range(N_JOBS):
            status, payload = _request(
                endpoint, "POST", "/jobs",
                {"netlist": TINY_BENCH, "name": f"tiny{seed}",
                 "seed": seed, "frames": 2, "patterns": 32})
            assert status == 202, (status, payload)
            jobs.append(payload["job"]["id"])
        digests = {}
        for job_id in jobs:
            while True:
                status, payload = _request(endpoint, "GET",
                                           f"/jobs/{job_id}/result")
                if status == 200:
                    assert payload["state"] == "done", payload
                    digests[job_id] = payload["result"]["digest"]
                    break
                assert status == 409, (status, payload)
                time.sleep(0.05)
        wall = time.perf_counter() - started
    finally:
        service.initiate_drain("bench complete")
        thread.join(60.0)
    assert not thread.is_alive()
    return wall, digests


def measure(base_dir) -> dict:
    plain_wall, plain = _run_batch(os.path.join(base_dir, "plain"),
                                   observe=False)
    traced_wall, traced = _run_batch(os.path.join(base_dir, "traced"),
                                     observe=True)
    assert sorted(plain.values()) == sorted(traced.values()), (
        "observability changed job digests", plain, traced)
    trace_file = os.path.join(base_dir, "traced", "trace.jsonl")
    profile_file = os.path.join(base_dir, "traced", "serve.prof")
    return {
        "format": "repro-bench-observability",
        "version": 1,
        "python": platform.python_version(),
        "jobs": N_JOBS,
        "pool": 2,
        "plain_s": round(plain_wall, 4),
        "traced_s": round(traced_wall, 4),
        "overhead_pct": round(
            100.0 * (traced_wall - plain_wall) / plain_wall, 2),
        "digest_parity": True,
        "trace_bytes": os.path.getsize(trace_file),
        "profile_bytes": os.path.getsize(profile_file),
    }


def test_service_observability_digest_parity(benchmark, tmp_path):
    result = benchmark.pedantic(measure, args=(str(tmp_path),),
                                rounds=1, iterations=1, warmup_rounds=0)
    # Parity is asserted inside measure(); overhead is reported, not
    # gated -- a 2-thread service on a noisy CI box cannot carry a
    # stable timing gate, and the tracing-off gate already lives in
    # bench_runtime_overhead.
    assert result["digest_parity"]


def main() -> int:
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-bench-obs-") as base:
        result = measure(base)
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(result, indent=2, sort_keys=True))
    print(f"written to {RESULTS_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

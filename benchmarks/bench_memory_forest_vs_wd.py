"""Sec. IV/VI claim: O(|E|) forest storage vs Theta(|V|^2) W/D matrices.

The motivation for the incremental algorithm is that the classical
W/D-matrix formulations need quadratic memory ("the bottleneck of this
class of algorithms", Sec. IV-A).  This benchmark measures the live
bytes of the forest-based solver state against the W/D matrices on the
same graphs across sizes, showing the linear-vs-quadratic separation.
"""

import numpy as np
import pytest

from repro.circuits import random_sequential_circuit
from repro.core.regular_forest import RegularForest
from repro.graph.paths import wd_matrices
from repro.graph.retiming_graph import RetimingGraph

from .conftest import once

_SIZES = (100, 200, 400, 800)
_MEASURED: dict[int, dict[str, float]] = {}


def _graph(n_gates: int) -> RetimingGraph:
    circuit = random_sequential_circuit(
        f"mem{n_gates}", n_gates=n_gates, n_dffs=max(8, n_gates // 3),
        n_inputs=8, n_outputs=8, seed=n_gates)
    return RetimingGraph.from_circuit(circuit)


def _forest_bytes(graph: RetimingGraph) -> int:
    import sys

    forest = RegularForest(np.zeros(graph.n_vertices, dtype=np.int64))
    total = forest.b.nbytes
    total += sys.getsizeof(forest.parent) + 8 * len(forest.parent)
    total += sys.getsizeof(forest.weight) + 8 * len(forest.weight)
    total += sys.getsizeof(forest.drags_parent) + len(forest.drags_parent)
    total += sum(sys.getsizeof(s) for s in forest.children)
    return total


def _wd_bytes(graph: RetimingGraph) -> int:
    W, D = wd_matrices(graph)
    return W.nbytes + D.nbytes


@pytest.mark.parametrize("n_gates", _SIZES)
def test_memory_comparison(benchmark, n_gates):
    graph = _graph(n_gates)

    def measure():
        return _forest_bytes(graph), _wd_bytes(graph)

    forest_bytes, wd_bytes = once(benchmark, measure)
    _MEASURED[n_gates] = {"forest": forest_bytes, "wd": wd_bytes,
                          "edges": graph.n_edges,
                          "vertices": graph.n_vertices}
    assert wd_bytes > forest_bytes


def test_zz_scaling_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_MEASURED) < 3:
        pytest.skip("not enough sizes measured")
    sizes = sorted(_MEASURED)
    print("\n   |V|      forest bytes      W/D bytes      ratio")
    for n in sizes:
        m = _MEASURED[n]
        print(f"  {m['vertices']:5d}  {m['forest']:12d}  "
              f"{m['wd']:13d}  {m['wd'] / m['forest']:9.1f}x")
    # Quadratic vs linear: the ratio between largest and smallest W/D
    # footprint should grow ~quadratically with |V| while the forest
    # grows ~linearly.
    small, large = _MEASURED[sizes[0]], _MEASURED[sizes[-1]]
    v_ratio = large["vertices"] / small["vertices"]
    wd_growth = large["wd"] / small["wd"]
    forest_growth = large["forest"] / small["forest"]
    assert wd_growth > 0.5 * v_ratio ** 2
    assert forest_growth < 3.0 * v_ratio

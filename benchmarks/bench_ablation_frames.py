"""Ablation: time-frame expansion depth n (the paper uses n = 15).

The observability of gates deep inside register pipelines only converges
once errors can traverse the whole sequential depth; the paper simulates
15 frames "to reach steady operational state".  This ablation sweeps n
and reports how far the per-gate observabilities (and the SER built from
them) are from the deep-horizon reference.
"""

import numpy as np
import pytest

from repro.circuits.suites import table1_circuit
from repro.sim.odc import observability
from repro.ser.analysis import analyze_ser
from repro.graph.retiming_graph import RetimingGraph
from repro.graph.timing import achieved_period

from .conftest import bench_patterns, bench_scale, once

_SWEEP: dict[int, tuple[float, float]] = {}
_FRAMES = (1, 2, 4, 8, 15)


@pytest.fixture(scope="module")
def instance():
    circuit = table1_circuit("s13207", scale=bench_scale())
    graph = RetimingGraph.from_circuit(circuit)
    phi = achieved_period(graph, graph.zero_retiming()) * 1.1
    reference = observability(circuit, n_frames=20,
                              n_patterns=bench_patterns(), seed=0).obs
    return circuit, phi, reference


@pytest.mark.parametrize("frames", _FRAMES)
def test_frames_sweep(benchmark, instance, frames):
    circuit, phi, reference = instance
    result = once(benchmark, observability, circuit, frames,
                  bench_patterns(), None, 0)
    gate_err = float(np.mean([abs(result.obs[g] - reference[g])
                              for g in circuit.gates]))
    ser = analyze_ser(circuit, phi, obs=result.obs).total
    _SWEEP[frames] = (gate_err, ser)


def test_zz_frames_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_SWEEP) < 4:
        pytest.skip("sweep incomplete")
    print("\n  n   mean |obs - obs_ref|     SER")
    for frames in sorted(_SWEEP):
        err, ser = _SWEEP[frames]
        print(f"  {frames:2d}   {err:10.4f}          {ser:.4e}")
    # Convergence: the paper's 15 frames sit much closer to the deep
    # reference than a single frame.
    assert _SWEEP[15][0] < _SWEEP[1][0]
    assert _SWEEP[15][0] < 0.05

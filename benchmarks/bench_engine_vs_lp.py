"""Sec. VI claim: the forest engine solves the MinObs problem of [17].

The paper argues its regular-forest MinObs is the same optimization the
LP of [17] solves, just faster and smaller.  This benchmark runs both on
the same instances -- the incremental engine (from the pointwise-maximal
start, where decrease-only descent is provably globally optimal on the
no-P2' relaxation) and the W/D-matrix LP -- asserts the objectives agree
exactly, and compares runtimes.
"""

import numpy as np
import pytest

from repro.circuits import random_sequential_circuit
from repro.core.constraints import Problem, gains
from repro.core.initialization import initialize, maximal_feasible_retiming
from repro.core.minobs import minobs_retiming
from repro.core.oracle import lp_minobs_optimum
from repro.graph.retiming_graph import RetimingGraph
from repro.sim.odc import observability

from .conftest import once


def _instance(seed: int, n_gates: int):
    circuit = random_sequential_circuit(
        f"lpcmp{seed}", n_gates=n_gates, n_dffs=max(8, n_gates // 3),
        n_inputs=8, n_outputs=8, seed=seed)
    graph = RetimingGraph.from_circuit(circuit)
    obs = observability(circuit, n_frames=5, n_patterns=128, seed=1).obs
    counts = {net: int(round(v * 128)) for net, v in obs.items()}
    init = initialize(graph, 0.0, 2.0)
    problem = Problem(graph=graph, phi=init.phi, setup=0.0, hold=2.0,
                      rmin=0.0, b=gains(graph, counts))
    r_max = maximal_feasible_retiming(problem)
    return problem, r_max


@pytest.fixture(scope="module", params=[3, 11, 27])
def instance(request):
    problem, r_max = _instance(request.param, n_gates=160)
    if r_max is None:
        pytest.skip("no maximal start on this instance")
    return problem, r_max


def test_forest_engine(benchmark, instance):
    problem, r_max = instance
    result = once(benchmark, minobs_retiming, problem, r_max)
    _, lp_best = lp_minobs_optimum(problem)
    assert result.objective == lp_best, \
        "forest engine must match the LP of [17] exactly"


def test_lp_reference(benchmark, instance):
    problem, r_max = instance
    r_lp, lp_best = once(benchmark, lp_minobs_optimum, problem)
    problem.graph.validate_retiming(r_lp)
    assert problem.objective(r_lp) == lp_best

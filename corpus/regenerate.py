#!/usr/bin/env python
"""Regenerate the committed small-tier corpus and its golden digests.

Usage (from the repository root, no environment setup needed):

    python corpus/regenerate.py

Rebuilds ``corpus/small/`` -- every emitted ``.bench``/``.blif`` file
plus ``corpus-manifest.json`` -- and reruns the small scenario matrix to
refresh ``corpus/small/matrix-golden.json``.  Only do this after an
*intentional* change to generators, emitters, solvers or simulation
behaviour, and commit the refreshed artifacts together with that
change: CI regenerates both and fails on any byte- or digest-level
drift (see ``docs/corpus.md``).
"""

import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

SMALL_DIR = REPO_ROOT / "corpus" / "small"


def main() -> int:
    from repro.corpus import run_matrix, write_corpus, write_digest_table
    from repro.corpus.matrix import GOLDEN_BASENAME

    if SMALL_DIR.exists():
        shutil.rmtree(SMALL_DIR)
    payload = write_corpus("small", SMALL_DIR)
    print(f"wrote {len(payload['circuits'])} circuits + manifest "
          f"to {SMALL_DIR}")
    # No out_dir: golden digests must come from a fresh, checkpoint-free
    # run, never resumed from stale manifests.
    result = run_matrix("small",
                        progress=lambda line: print(line, file=sys.stderr))
    golden_path = SMALL_DIR / GOLDEN_BASENAME
    write_digest_table(result.digest_table(), golden_path)
    not_ok = sum(1 for s in result.statuses.values() if s != "ok")
    print(f"wrote {golden_path}: {len(result.cells)} cells, "
          f"{not_ok} degraded")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

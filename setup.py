"""Shim for legacy editable installs in offline environments without `wheel`.

`pip install -e .` falls back to `setup.py develop` when PEP-517 editable
builds are unavailable; all metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
